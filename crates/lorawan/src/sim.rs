//! Discrete-event LoRaWAN radio simulator.
//!
//! Transmissions are submitted in time order; each is exposed to every
//! gateway through the propagation model, checked against receiver
//! sensitivity, co-channel/co-SF collisions (with an optional 6 dB capture
//! effect), and the gateways' limited demodulator paths. A transmission is
//! finalized once no later submission can still overlap it, which makes the
//! simulator streaming and deterministic.
//!
//! Losses are attributed to a [`LossReason`] so the network-monitoring
//! dataport and the evaluation benches can distinguish *why* data is
//! missing — the paper's §2.3 is exactly about this distinction.

use crate::airtime::{time_on_air_s, AirtimeParams};
use crate::dutycycle::DutyCycleTracker;
use crate::frame::UplinkFrame;
use crate::propagation::{link_budget, PathLossModel};
use crate::region::{Region, SpreadingFactor};
use ctt_core::geo::LatLon;
use ctt_core::ids::{DevEui, GatewayId};
use ctt_core::time::Timestamp;
use ctt_core::units::Dbm;
use std::collections::HashMap;

/// A gateway in the simulation.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Gateway identity.
    pub id: GatewayId,
    /// Position.
    pub position: LatLon,
    /// Antenna height above ground, metres.
    pub antenna_m: f64,
    /// Concurrent demodulation paths (8 on SX1301 concentrators).
    pub demod_paths: usize,
}

impl GatewayConfig {
    /// A standard 8-path gateway.
    pub fn standard(id: GatewayId, position: LatLon, antenna_m: f64) -> Self {
        GatewayConfig {
            id,
            position,
            antenna_m,
            demod_paths: 8,
        }
    }
}

/// A transmission request from a node.
#[derive(Debug, Clone)]
pub struct TxRequest {
    /// Transmitting device.
    pub device: DevEui,
    /// Node position.
    pub position: LatLon,
    /// The frame to send.
    pub frame: UplinkFrame,
    /// Spreading factor.
    pub sf: SpreadingFactor,
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Channel index into the region plan.
    pub channel: usize,
}

/// Reception metadata at one gateway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reception {
    /// Receiving gateway.
    pub gateway: GatewayId,
    /// Received signal strength, dBm.
    pub rssi_dbm: f64,
    /// Signal-to-noise ratio, dB.
    pub snr_db: f64,
}

/// A successfully delivered uplink (heard by ≥1 gateway).
#[derive(Debug, Clone)]
pub struct DeliveredUplink {
    /// The decoded frame.
    pub frame: UplinkFrame,
    /// Transmission start time (whole seconds).
    pub time: Timestamp,
    /// Spreading factor used.
    pub sf: SpreadingFactor,
    /// Time-on-air of the transmission, seconds.
    pub airtime_s: f64,
    /// Gateways that demodulated the frame, strongest first.
    pub receptions: Vec<Reception>,
}

impl DeliveredUplink {
    /// The strongest reception (the network server's canonical gateway).
    pub fn best(&self) -> &Reception {
        const NO_RECEPTION: Reception = Reception {
            gateway: GatewayId(0),
            rssi_dbm: f64::NEG_INFINITY,
            snr_db: f64::NEG_INFINITY,
        };
        // Delivered uplinks always carry ≥1 reception; the fallback keeps
        // this hot path panic-free.
        self.receptions.first().unwrap_or(&NO_RECEPTION)
    }
}

/// Why a transmission was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LossReason {
    /// Refused locally: duty-cycle budget exhausted.
    DutyCycle,
    /// No gateway received enough signal.
    NoCoverage,
    /// Destroyed by a co-channel collision at every reachable gateway.
    Collision,
    /// All reachable gateways were out of demodulation paths.
    GatewayBusy,
    /// Every reachable gateway was inside an injected outage window.
    GatewayDown,
}

/// A scheduled gateway outage window (fault injection): the gateway hears
/// nothing in `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// The gateway taken down.
    pub gateway: GatewayId,
    /// Outage start (inclusive).
    pub from: Timestamp,
    /// Outage end (exclusive).
    pub until: Timestamp,
}

impl OutageWindow {
    /// Whether this window covers gateway `gw` at instant `t`.
    pub fn covers(&self, gw: GatewayId, t: Timestamp) -> bool {
        self.gateway == gw && self.from <= t && t < self.until
    }
}

/// A lost transmission with its cause.
#[derive(Debug, Clone)]
pub struct LostUplink {
    /// Transmitting device.
    pub device: DevEui,
    /// Attempted at.
    pub time: Timestamp,
    /// Cause.
    pub reason: LossReason,
}

/// Aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Transmissions submitted.
    pub submitted: u64,
    /// Delivered to at least one gateway.
    pub delivered: u64,
    /// Lost: duty cycle refusals.
    pub lost_duty_cycle: u64,
    /// Lost: out of coverage.
    pub lost_no_coverage: u64,
    /// Lost: collisions.
    pub lost_collision: u64,
    /// Lost: gateway demodulator exhaustion.
    pub lost_gateway_busy: u64,
    /// Lost: every reachable gateway was in an injected outage window.
    pub lost_gateway_down: u64,
}

impl SimStats {
    /// Packet delivery ratio in [0, 1].
    pub fn pdr(&self) -> f64 {
        if self.submitted == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.submitted as f64
    }
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Regional parameters.
    pub region: Region,
    /// Propagation model.
    pub path_loss: PathLossModel,
    /// Whether the capture effect is modelled (ablation switch).
    pub capture_effect: bool,
    /// Power advantage needed to capture a collision, dB.
    pub capture_threshold_db: f64,
}

impl SimConfig {
    /// Standard EU868 urban configuration.
    pub fn urban(seed: u64) -> Self {
        SimConfig {
            region: Region::eu868(),
            path_loss: PathLossModel::urban(seed),
            capture_effect: true,
            capture_threshold_db: 6.0,
        }
    }
}

#[derive(Debug, Clone)]
struct InFlight {
    start_s: f64,
    end_s: f64,
    req: TxRequest,
    nonce: u64,
    time: Timestamp,
    airtime_s: f64,
    /// Resolved transmissions stay in the window as interferers for
    /// still-unresolved overlapping transmissions until safely prunable.
    resolved: bool,
}

/// The event-driven radio network simulator.
#[derive(Debug)]
pub struct RadioSimulator {
    config: SimConfig,
    gateways: Vec<GatewayConfig>,
    duty: HashMap<DevEui, DutyCycleTracker>,
    in_flight: Vec<InFlight>,
    delivered: Vec<DeliveredUplink>,
    lost: Vec<LostUplink>,
    stats: SimStats,
    next_nonce: u64,
    last_submit_s: f64,
    outages: Vec<OutageWindow>,
}

impl RadioSimulator {
    /// Create a simulator with the given gateways.
    pub fn new(config: SimConfig, gateways: Vec<GatewayConfig>) -> Self {
        RadioSimulator {
            config,
            gateways,
            duty: HashMap::new(),
            in_flight: Vec::new(),
            delivered: Vec::new(),
            lost: Vec::new(),
            stats: SimStats::default(),
            next_nonce: 1,
            last_submit_s: f64::NEG_INFINITY,
            outages: Vec::new(),
        }
    }

    /// The gateway list.
    pub fn gateways(&self) -> &[GatewayConfig] {
        &self.gateways
    }

    /// Install scheduled gateway outage windows (fault injection). A gateway
    /// inside one of its windows hears nothing; losses caused only by the
    /// outage are attributed to [`LossReason::GatewayDown`].
    pub fn set_outages(&mut self, outages: Vec<OutageWindow>) {
        self.outages = outages;
    }

    fn gateway_down(&self, gw: GatewayId, t: Timestamp) -> bool {
        self.outages.iter().any(|w| w.covers(gw, t))
    }

    /// Aggregate statistics so far (only counts finalized transmissions).
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Submit a transmission starting at `time` (must be non-decreasing
    /// across calls). Returns the time-on-air if accepted for transmission,
    /// or `None` if the duty cycle refused it.
    pub fn submit(&mut self, time: Timestamp, req: TxRequest) -> Option<f64> {
        let start_s = time.as_seconds() as f64;
        assert!(
            start_s >= self.last_submit_s,
            "submissions must be time-ordered: {start_s} < {}",
            self.last_submit_s
        );
        self.last_submit_s = start_s;
        self.stats.submitted += 1;

        let airtime = time_on_air_s(&AirtimeParams::lorawan_uplink(req.sf, req.frame.phy_len()));
        let duty = self
            .duty
            .entry(req.device)
            .or_insert_with(|| DutyCycleTracker::new(self.config.region.duty_cycle));
        if !duty.try_transmit(time, airtime) {
            self.stats.lost_duty_cycle += 1;
            self.lost.push(LostUplink {
                device: req.device,
                time,
                reason: LossReason::DutyCycle,
            });
            return None;
        }

        // Finalize everything that can no longer be interfered with.
        self.finalize_before(start_s);

        let nonce = self.next_nonce;
        self.next_nonce += 1;
        self.in_flight.push(InFlight {
            start_s,
            end_s: start_s + airtime,
            req,
            nonce,
            time,
            airtime_s: airtime,
            resolved: false,
        });
        Some(airtime)
    }

    /// Resolve all transmissions ending at or before `cutoff_s`. No future
    /// submission (start ≥ cutoff) can overlap them, and every interferer —
    /// resolved or not — is still present in the window, so outcomes are
    /// final. Afterwards, prune resolved entries that no unresolved entry
    /// overlaps.
    fn finalize_before(&mut self, cutoff_s: f64) {
        let to_resolve: Vec<usize> = self
            .in_flight
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.resolved && t.end_s <= cutoff_s)
            .map(|(i, _)| i)
            .collect();
        for idx in to_resolve {
            let Some(tx) = self.in_flight.get(idx).cloned() else {
                continue;
            };
            let outcome = self.resolve(&tx, idx);
            if let Some(entry) = self.in_flight.get_mut(idx) {
                entry.resolved = true;
            }
            match outcome {
                Ok(delivery) => {
                    self.stats.delivered += 1;
                    self.delivered.push(delivery);
                }
                Err(reason) => {
                    match reason {
                        LossReason::NoCoverage => self.stats.lost_no_coverage += 1,
                        LossReason::Collision => self.stats.lost_collision += 1,
                        LossReason::GatewayBusy => self.stats.lost_gateway_busy += 1,
                        LossReason::GatewayDown => self.stats.lost_gateway_down += 1,
                        LossReason::DutyCycle => unreachable!("handled at submit"),
                    }
                    self.lost.push(LostUplink {
                        device: tx.req.device,
                        time: tx.time,
                        reason,
                    });
                }
            }
        }
        // Prune: a resolved entry may be dropped once nothing unresolved
        // overlaps it and no future submission can (start ≥ cutoff).
        let min_unresolved_start = self
            .in_flight
            .iter()
            .filter(|t| !t.resolved)
            .map(|t| t.start_s)
            .fold(f64::INFINITY, f64::min);
        self.in_flight
            .retain(|t| !t.resolved || t.end_s > cutoff_s.min(min_unresolved_start));
    }

    /// RSSI/SNR of a transmission at a gateway.
    fn budget(&self, tx: &InFlight, gw: &GatewayConfig) -> crate::propagation::LinkBudget {
        link_budget(
            &self.config.path_loss,
            Dbm(tx.req.tx_power_dbm),
            tx.req.position,
            gw.position,
            gw.antenna_m,
            tx.nonce,
        )
    }

    /// Resolve the fate of a transmission (`idx` is its position in
    /// `in_flight`; other in-flight entries are potential interferers).
    fn resolve(&self, tx: &InFlight, idx: usize) -> Result<DeliveredUplink, LossReason> {
        let mut receptions = Vec::new();
        let mut saw_sensitivity = false;
        let mut saw_busy = false;
        let mut saw_outage = false;
        for gw in &self.gateways {
            let lb = self.budget(tx, gw);
            if lb.rssi_dbm < tx.req.sf.sensitivity_dbm() || lb.snr_db < tx.req.sf.required_snr_db()
            {
                continue; // below this gateway's floor
            }
            saw_sensitivity = true;

            // Injected outage: the gateway would have heard this frame but
            // is scheduled down. Attribution beats busy/collision so the
            // fault plan, not a coincident RF event, owns the loss.
            if self.gateway_down(gw.id, tx.time) {
                saw_outage = true;
                continue;
            }

            // Demod-path check: how many *receivable* transmissions overlap
            // this one at this gateway (including itself), in start order?
            let overlapping: Vec<&InFlight> = self
                .in_flight
                .iter()
                .enumerate()
                .filter(|(j, o)| {
                    *j != idx && o.start_s < tx.end_s && tx.start_s < o.end_s && {
                        let olb = self.budget(o, gw);
                        olb.rssi_dbm >= o.req.sf.sensitivity_dbm()
                    }
                })
                .map(|(_, o)| o)
                .collect();
            let earlier = overlapping
                .iter()
                .filter(|o| (o.start_s, o.nonce) < (tx.start_s, tx.nonce))
                .count();
            if earlier + 1 > gw.demod_paths {
                saw_busy = true;
                continue;
            }

            // Collision check: co-channel, co-SF overlaps.
            let mut collided = false;
            for other in &overlapping {
                if other.req.channel % self.config.region.channels.len()
                    != tx.req.channel % self.config.region.channels.len()
                    || other.req.sf != tx.req.sf
                {
                    continue; // different channel or quasi-orthogonal SF
                }
                let other_lb = self.budget(other, gw);
                if other_lb.rssi_dbm < tx.req.sf.sensitivity_dbm() {
                    continue; // interferer below floor contributes ~nothing
                }
                let advantage = lb.rssi_dbm - other_lb.rssi_dbm;
                let survives =
                    self.config.capture_effect && advantage >= self.config.capture_threshold_db;
                if !survives {
                    collided = true;
                    break;
                }
            }
            if collided {
                continue;
            }
            receptions.push(Reception {
                gateway: gw.id,
                rssi_dbm: lb.rssi_dbm,
                snr_db: lb.snr_db,
            });
        }
        if receptions.is_empty() {
            if saw_outage {
                return Err(LossReason::GatewayDown);
            }
            if saw_busy {
                return Err(LossReason::GatewayBusy);
            }
            if saw_sensitivity {
                return Err(LossReason::Collision);
            }
            return Err(LossReason::NoCoverage);
        }
        receptions.sort_by(|a, b| b.rssi_dbm.total_cmp(&a.rssi_dbm));
        Ok(DeliveredUplink {
            frame: tx.req.frame.clone(),
            time: tx.time,
            sf: tx.req.sf,
            airtime_s: tx.airtime_s,
            receptions,
        })
    }

    /// Resolve every in-flight transmission whose window ends at or before
    /// `cutoff` (an event-queue deadline). Submissions are whole-second
    /// timestamps, so once the clock reaches a window's deadline no future
    /// submission can overlap it and its outcome is final — this is the
    /// event-driven replacement for draining on a guessed horizon.
    /// Resolved outcomes accumulate for [`Self::drain_resolved`] /
    /// [`Self::drain_lost`].
    pub fn resolve_until(&mut self, cutoff: Timestamp) {
        self.finalize_before(cutoff.as_seconds() as f64);
    }

    /// Take the delivered uplinks resolved so far (time-ordered), without
    /// forcing resolution of still-open windows.
    pub fn drain_resolved(&mut self) -> Vec<DeliveredUplink> {
        let mut out = std::mem::take(&mut self.delivered);
        out.sort_by_key(|d| d.time);
        out
    }

    /// The earliest whole-second deadline at which an unresolved in-flight
    /// window can be finalized (its end rounded up to the next second), or
    /// `None` when nothing is in flight.
    pub fn next_deadline(&self) -> Option<Timestamp> {
        self.in_flight
            .iter()
            .filter(|t| !t.resolved)
            .map(|t| Timestamp(t.end_s.ceil() as i64))
            .min()
    }

    /// Finalize everything in flight and drain the delivered uplinks
    /// (time-ordered) accumulated since the last drain.
    pub fn drain(&mut self) -> Vec<DeliveredUplink> {
        self.finalize_before(f64::INFINITY);
        self.drain_resolved()
    }

    /// Drain the record of lost transmissions.
    pub fn drain_lost(&mut self) -> Vec<LostUplink> {
        std::mem::take(&mut self.lost)
    }
}

impl ctt_sim::Schedulable for RadioSimulator {
    /// The radio wants to run when its earliest open window's deadline
    /// fires; the driving loop schedules a resolution event there instead
    /// of polling "is anything else nearby?".
    fn next_event(&self, now: Timestamp) -> Option<Timestamp> {
        self.next_deadline().map(|t| t.max(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctt_core::geo::LatLon;

    const GW_POS: LatLon = LatLon::new(63.4305, 10.3951);

    fn gateway() -> GatewayConfig {
        GatewayConfig::standard(GatewayId::ctt(1), GW_POS, 40.0)
    }

    fn req(dev: u32, pos: LatLon, sf: SpreadingFactor, channel: usize, fcnt: u16) -> TxRequest {
        TxRequest {
            device: DevEui::ctt(dev),
            position: pos,
            frame: UplinkFrame::new(DevEui::ctt(dev), fcnt, 2, vec![0; 18]),
            sf,
            tx_power_dbm: 14.0,
            channel,
        }
    }

    fn sim() -> RadioSimulator {
        RadioSimulator::new(SimConfig::urban(1), vec![gateway()])
    }

    #[test]
    fn close_node_delivers() {
        let mut s = sim();
        let pos = GW_POS.offset(0.0, 200.0);
        s.submit(Timestamp(0), req(1, pos, SpreadingFactor::Sf9, 0, 0));
        let out = s.drain();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].frame.dev_eui, DevEui::ctt(1));
        assert_eq!(out[0].receptions.len(), 1);
        assert!(out[0].best().rssi_dbm > -120.0);
        assert_eq!(s.stats().pdr(), 1.0);
    }

    #[test]
    fn distant_node_out_of_coverage() {
        let mut s = RadioSimulator::new(
            SimConfig {
                path_loss: PathLossModel::urban(1),
                ..SimConfig::urban(1)
            },
            vec![gateway()],
        );
        // 60 km away: hopeless even at SF12.
        let pos = GW_POS.offset(0.0, 60_000.0);
        s.submit(Timestamp(0), req(1, pos, SpreadingFactor::Sf12, 0, 0));
        let out = s.drain();
        assert!(out.is_empty());
        let lost = s.drain_lost();
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].reason, LossReason::NoCoverage);
        assert_eq!(s.stats().lost_no_coverage, 1);
    }

    #[test]
    fn same_channel_same_sf_overlap_collides() {
        let mut cfg = SimConfig::urban(1);
        cfg.capture_effect = false;
        cfg.path_loss = PathLossModel::free_space(1);
        let mut s = RadioSimulator::new(cfg, vec![gateway()]);
        let a = GW_POS.offset(0.0, 300.0);
        let b = GW_POS.offset(180.0, 300.0);
        s.submit(Timestamp(0), req(1, a, SpreadingFactor::Sf12, 0, 0));
        s.submit(Timestamp(0), req(2, b, SpreadingFactor::Sf12, 0, 0));
        let out = s.drain();
        assert!(out.is_empty(), "both should be destroyed without capture");
        assert_eq!(s.stats().lost_collision, 2);
    }

    #[test]
    fn capture_effect_saves_stronger() {
        let mut cfg = SimConfig::urban(1);
        cfg.path_loss = PathLossModel::free_space(1);
        let mut s = RadioSimulator::new(cfg, vec![gateway()]);
        let near = GW_POS.offset(0.0, 100.0);
        let far = GW_POS.offset(180.0, 2000.0); // ≥ 26 dB weaker in free space
        s.submit(Timestamp(0), req(1, near, SpreadingFactor::Sf12, 0, 0));
        s.submit(Timestamp(0), req(2, far, SpreadingFactor::Sf12, 0, 1));
        let out = s.drain();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].frame.dev_eui, DevEui::ctt(1));
        assert_eq!(s.stats().lost_collision, 1);
    }

    #[test]
    fn different_channels_do_not_collide() {
        let mut cfg = SimConfig::urban(1);
        cfg.capture_effect = false;
        cfg.path_loss = PathLossModel::free_space(1);
        let mut s = RadioSimulator::new(cfg, vec![gateway()]);
        let a = GW_POS.offset(0.0, 300.0);
        let b = GW_POS.offset(180.0, 300.0);
        s.submit(Timestamp(0), req(1, a, SpreadingFactor::Sf12, 0, 0));
        s.submit(Timestamp(0), req(2, b, SpreadingFactor::Sf12, 1, 0));
        assert_eq!(s.drain().len(), 2);
    }

    #[test]
    fn different_sf_do_not_collide() {
        let mut cfg = SimConfig::urban(1);
        cfg.capture_effect = false;
        cfg.path_loss = PathLossModel::free_space(1);
        let mut s = RadioSimulator::new(cfg, vec![gateway()]);
        let a = GW_POS.offset(0.0, 300.0);
        let b = GW_POS.offset(180.0, 300.0);
        s.submit(Timestamp(0), req(1, a, SpreadingFactor::Sf11, 0, 0));
        s.submit(Timestamp(0), req(2, b, SpreadingFactor::Sf12, 0, 0));
        assert_eq!(s.drain().len(), 2);
    }

    #[test]
    fn non_overlapping_transmissions_pass() {
        let mut cfg = SimConfig::urban(1);
        cfg.capture_effect = false;
        cfg.path_loss = PathLossModel::free_space(1);
        let mut s = RadioSimulator::new(cfg, vec![gateway()]);
        let a = GW_POS.offset(0.0, 300.0);
        // SF12 airtime ≈ 1.8 s; 10 s apart never overlaps. Different
        // devices so the duty cycle does not interfere with the test.
        s.submit(Timestamp(0), req(1, a, SpreadingFactor::Sf12, 0, 0));
        s.submit(Timestamp(10), req(2, a, SpreadingFactor::Sf12, 0, 0));
        assert_eq!(s.drain().len(), 2);
    }

    #[test]
    fn duty_cycle_refusal_counted() {
        let mut s = sim();
        let pos = GW_POS.offset(0.0, 200.0);
        // Two SF12 transmissions in the same second: second refused.
        s.submit(Timestamp(0), req(1, pos, SpreadingFactor::Sf12, 0, 0));
        let r = s.submit(Timestamp(1), req(1, pos, SpreadingFactor::Sf12, 0, 1));
        assert!(r.is_none());
        assert_eq!(s.stats().lost_duty_cycle, 1);
        let out = s.drain();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn two_gateways_both_hear() {
        let gw2 = GatewayConfig::standard(GatewayId::ctt(2), GW_POS.offset(90.0, 800.0), 30.0);
        let mut cfg = SimConfig::urban(1);
        cfg.path_loss = PathLossModel::free_space(1);
        let mut s = RadioSimulator::new(cfg, vec![gateway(), gw2]);
        let pos = GW_POS.offset(45.0, 400.0);
        s.submit(Timestamp(0), req(1, pos, SpreadingFactor::Sf10, 0, 0));
        let out = s.drain();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].receptions.len(), 2);
        // Strongest first.
        assert!(out[0].receptions[0].rssi_dbm >= out[0].receptions[1].rssi_dbm);
    }

    #[test]
    fn demod_path_exhaustion() {
        let mut gw = gateway();
        gw.demod_paths = 2;
        let mut cfg = SimConfig::urban(1);
        cfg.path_loss = PathLossModel::free_space(1);
        let mut s = RadioSimulator::new(cfg, vec![gw]);
        // Three simultaneous transmissions on different channels (no RF
        // collision) but only two demod paths.
        for (i, ch) in [(1u32, 0usize), (2, 1), (3, 2)] {
            let pos = GW_POS.offset(f64::from(i) * 20.0, 300.0);
            s.submit(Timestamp(0), req(i, pos, SpreadingFactor::Sf12, ch, 0));
        }
        let out = s.drain();
        assert_eq!(out.len(), 2, "only two demod paths");
        assert_eq!(s.stats().lost_gateway_busy, 1);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_submission_panics() {
        let mut s = sim();
        let pos = GW_POS.offset(0.0, 200.0);
        s.submit(Timestamp(100), req(1, pos, SpreadingFactor::Sf9, 0, 0));
        s.submit(Timestamp(50), req(2, pos, SpreadingFactor::Sf9, 0, 0));
    }

    #[test]
    fn outage_window_attributes_gateway_down() {
        let mut s = sim();
        s.set_outages(vec![OutageWindow {
            gateway: GatewayId::ctt(1),
            from: Timestamp(100),
            until: Timestamp(200),
        }]);
        let pos = GW_POS.offset(0.0, 200.0);
        // Before, inside, and after the window (distinct devices so the
        // duty cycle stays out of the way).
        s.submit(Timestamp(0), req(1, pos, SpreadingFactor::Sf9, 0, 0));
        s.submit(Timestamp(150), req(2, pos, SpreadingFactor::Sf9, 1, 0));
        s.submit(Timestamp(300), req(3, pos, SpreadingFactor::Sf9, 2, 0));
        let out = s.drain();
        assert_eq!(out.len(), 2);
        let lost = s.drain_lost();
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].device, DevEui::ctt(2));
        assert_eq!(lost[0].reason, LossReason::GatewayDown);
        assert_eq!(s.stats().lost_gateway_down, 1);
    }

    #[test]
    fn outage_attribution_beats_collision() {
        // Two colliding frames during an outage: both losses must be
        // attributed to the injected fault, not the coincident collision.
        let mut cfg = SimConfig::urban(1);
        cfg.capture_effect = false;
        cfg.path_loss = PathLossModel::free_space(1);
        let mut s = RadioSimulator::new(cfg, vec![gateway()]);
        s.set_outages(vec![OutageWindow {
            gateway: GatewayId::ctt(1),
            from: Timestamp(0),
            until: Timestamp(10),
        }]);
        let a = GW_POS.offset(0.0, 300.0);
        let b = GW_POS.offset(180.0, 300.0);
        s.submit(Timestamp(0), req(1, a, SpreadingFactor::Sf12, 0, 0));
        s.submit(Timestamp(0), req(2, b, SpreadingFactor::Sf12, 0, 0));
        assert!(s.drain().is_empty());
        let lost = s.drain_lost();
        assert_eq!(lost.len(), 2);
        assert!(lost.iter().all(|l| l.reason == LossReason::GatewayDown));
        assert_eq!(s.stats().lost_collision, 0);
    }

    #[test]
    fn stats_pdr() {
        let s = SimStats {
            submitted: 10,
            delivered: 9,
            ..SimStats::default()
        };
        assert!((s.pdr() - 0.9).abs() < 1e-12);
        assert_eq!(SimStats::default().pdr(), 1.0);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut s = sim();
            let pos = GW_POS.offset(30.0, 1200.0);
            for i in 0..50 {
                s.submit(
                    Timestamp(i64::from(i) * 300),
                    req(1, pos, SpreadingFactor::Sf10, i as usize, i as u16),
                );
            }
            let d = s.drain();
            (
                d.len(),
                d.first().map(|u| (u.best().rssi_dbm, u.best().snr_db)),
            )
        };
        assert_eq!(run(), run());
    }
}
