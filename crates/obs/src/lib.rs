//! # ctt-obs — deterministic observability
//!
//! The paper's dataport exists to *monitor* the sensor network; this crate
//! is the uniform substrate the rest of the workspace publishes its health
//! into. Three pieces:
//!
//! * a [`Registry`] of interned-name [`Counter`]s and [`Gauge`]s whose
//!   [`Snapshot`] has a stable (sorted) order and integer-only values, so a
//!   snapshot of a deterministic run is byte-identical across replays;
//! * dispatch-tracing building blocks — a fixed-bucket [`FixedHistogram`]
//!   and a bounded [`TraceSink`] — used by `ctt-sim`'s event queue to emit
//!   a scheduling profile without instrumenting each subsystem;
//! * a [`FlightRecorder`]: a fixed-capacity ring of recent stage
//!   enter/exit span events, dumped on post-mortems (ledger imbalance,
//!   alarm mismatch) by the chaos soak.
//!
//! **Determinism rules.** Only logical [`Timestamp`]s (the `SimClock`) ever
//! enter a metric, span, or trace record — never the wall clock. Every
//! value is an integer (no float formatting ambiguity). Snapshot order is
//! the sorted metric name, not insertion order, so refactorings that move
//! registration sites cannot reorder exports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod recorder;
mod registry;
mod trace;

pub use recorder::{FlightRecorder, SpanEvent, SpanKind};
pub use registry::{Counter, Gauge, Registry, Snapshot, SnapshotDiff};
pub use trace::{FixedHistogram, PercentileEstimate, TraceEvent, TraceSink};
