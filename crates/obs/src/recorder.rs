//! The flight recorder: a fixed-capacity ring of recent span events.
//!
//! Post-mortems need *recent context*, not a full log: when the chaos soak
//! trips on a ledger imbalance or an alarm mismatch, the last few hundred
//! stage enter/exit events (with logical timestamps) show what the
//! pipeline was dispatching leading up to the failure. The ring overwrites
//! the oldest events, so a week-long soak costs the same memory as a
//! minute-long one.

use ctt_core::time::Timestamp;
use std::fmt::Write as _;

/// Span edge: a stage was entered or exited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Stage entered.
    Enter,
    /// Stage exited.
    Exit,
}

impl SpanKind {
    fn label(self) -> &'static str {
        match self {
            SpanKind::Enter => "enter",
            SpanKind::Exit => "exit",
        }
    }
}

/// One recorded span edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Logical time of the edge.
    pub time: Timestamp,
    /// Stage name (static: stage taxonomy is fixed at compile time).
    pub stage: &'static str,
    /// Enter or exit.
    pub kind: SpanKind,
}

/// A fixed-capacity ring buffer of [`SpanEvent`]s.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: Vec<SpanEvent>,
    capacity: usize,
    /// Index the next event is written to once the ring is full.
    next: usize,
    /// Total events ever recorded (≥ `ring.len()`).
    total: u64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events (≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: Vec::with_capacity(capacity.min(4096)),
            capacity,
            next: 0,
            total: 0,
        }
    }

    /// Record a span edge.
    pub fn record(&mut self, time: Timestamp, stage: &'static str, kind: SpanKind) {
        let event = SpanEvent { time, stage, kind };
        if self.ring.len() < self.capacity {
            self.ring.push(event);
        } else {
            if let Some(slot) = self.ring.get_mut(self.next) {
                *slot = event;
            }
            self.next = (self.next + 1) % self.capacity;
        }
        self.total += 1;
    }

    /// Record a stage entry.
    pub fn enter(&mut self, time: Timestamp, stage: &'static str) {
        self.record(time, stage, SpanKind::Enter);
    }

    /// Record a stage exit.
    pub fn exit(&mut self, time: Timestamp, stage: &'static str) {
        self.record(time, stage, SpanKind::Exit);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        if self.ring.len() == self.capacity {
            out.extend_from_slice(self.ring.get(self.next..).unwrap_or_default());
            out.extend_from_slice(self.ring.get(..self.next).unwrap_or_default());
        } else {
            out.extend_from_slice(&self.ring);
        }
        out
    }

    /// Canonical post-mortem dump: a header, then one line per retained
    /// event oldest-to-newest. Byte-identical across replays.
    pub fn dump(&self) -> String {
        let events = self.events();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: last {} of {} span events",
            events.len(),
            self.total
        );
        for e in events {
            let _ = writeln!(
                out,
                "t={} {} {}",
                e.time.as_seconds(),
                e.kind.label(),
                e.stage
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5 {
            r.record(Timestamp(i), "s", SpanKind::Enter);
        }
        let times: Vec<i64> = r.events().iter().map(|e| e.time.as_seconds()).collect();
        assert_eq!(times, vec![2, 3, 4]);
        assert_eq!(r.total(), 5);
    }

    #[test]
    fn dump_is_canonical() {
        let mut r = FlightRecorder::new(8);
        r.enter(Timestamp(10), "node-tx");
        r.exit(Timestamp(10), "node-tx");
        assert_eq!(
            r.dump(),
            "flight recorder: last 2 of 2 span events\nt=10 enter node-tx\nt=10 exit node-tx\n"
        );
    }

    #[test]
    fn partial_ring_dumps_in_insertion_order() {
        let mut r = FlightRecorder::new(100);
        r.enter(Timestamp(1), "a");
        r.enter(Timestamp(2), "b");
        let stages: Vec<&str> = r.events().iter().map(|e| e.stage).collect();
        assert_eq!(stages, vec!["a", "b"]);
    }
}
