//! The metrics registry: interned-name counters and gauges with a
//! deterministic snapshot.
//!
//! Handles are `Arc`-backed atomics, so incrementing on a hot path is one
//! relaxed atomic op and never takes a lock; the registry's lock is touched
//! only on (cold) registration and snapshot. All values are integers:
//! float formatting is platform-honest but invites accidental
//! nondeterminism the moment someone averages, so ratios are left to the
//! consumers of the export.

use ctt_core::time::Timestamp;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere (still usable, never exported).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depths, high-water
/// marks). Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not registered anywhere (still usable, never exported).
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if `v` is larger (high-water semantics).
    pub fn raise_to(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
}

/// The registry: a clonable handle to a shared name → metric map.
///
/// Registering an already-known name returns a handle to the *existing*
/// cell (this is what lets the broker keep its legacy getters as thin
/// views). A name registered as one kind and requested as the other keeps
/// its original kind and hands back a detached cell — panic-free by
/// design, since registration sits close to hot paths.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            Metric::Gauge(_) => Counter::detached(),
        }
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            Metric::Counter(_) => Gauge::detached(),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Capture every registered metric at logical time `at`. The snapshot
    /// owns plain integers — reading it later cannot race with writers.
    pub fn snapshot(&self, at: Timestamp) -> Snapshot {
        let mut snap = Snapshot::new(at);
        for (name, metric) in self.inner.lock().iter() {
            match metric {
                Metric::Counter(c) => snap.push_counter(name, c.get()),
                Metric::Gauge(g) => snap.push_gauge(name, g.get()),
            }
        }
        snap
    }
}

/// One exported value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    Counter(u64),
    Gauge(i64),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
        }
    }
}

/// A point-in-time export of metrics, keyed and rendered in sorted name
/// order. Byte-identical across replays of a deterministic run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    at: Timestamp,
    entries: BTreeMap<String, Value>,
}

impl Snapshot {
    /// An empty snapshot stamped with logical time `at`.
    pub fn new(at: Timestamp) -> Self {
        Snapshot {
            at,
            entries: BTreeMap::new(),
        }
    }

    /// The logical capture time.
    pub fn at(&self) -> Timestamp {
        self.at
    }

    /// Add (or overwrite) a counter-valued entry.
    pub fn push_counter(&mut self, name: &str, value: u64) {
        self.entries.insert(name.to_string(), Value::Counter(value));
    }

    /// Add (or overwrite) a gauge-valued entry.
    pub fn push_gauge(&mut self, name: &str, value: i64) {
        self.entries.insert(name.to_string(), Value::Gauge(value));
    }

    /// Expand a fixed-bucket histogram into `name.le_<bound>` cumulative
    /// bucket counters plus `name.count` and `name.sum`.
    pub fn push_histogram(&mut self, name: &str, h: &crate::FixedHistogram) {
        let mut cumulative = 0u64;
        for (bound, count) in h.buckets() {
            cumulative += count;
            self.push_counter(&format!("{name}.le_{bound}"), cumulative);
        }
        cumulative += h.overflow();
        self.push_counter(&format!("{name}.le_inf"), cumulative);
        self.push_counter(&format!("{name}.count"), h.count());
        self.push_gauge(&format!("{name}.sum"), h.sum());
    }

    /// The value of `name`, as a widened integer, if present.
    pub fn value(&self, name: &str) -> Option<i128> {
        self.entries.get(name).map(|v| match v {
            Value::Counter(c) => i128::from(*c),
            Value::Gauge(g) => i128::from(*g),
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Canonical CSV rendering: header then one sorted row per metric.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,kind,value\n");
        for (name, value) in &self.entries {
            let _ = match value {
                Value::Counter(c) => writeln!(out, "{name},counter,{c}"),
                Value::Gauge(g) => writeln!(out, "{name},gauge,{g}"),
            };
        }
        out
    }

    /// Parse the canonical [`Snapshot::to_json`] format back into a
    /// snapshot. Line-oriented by construction (one metric object per
    /// line), so no general JSON machinery is needed; anything else is
    /// rejected with a description of the first offending line.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        fn str_field(line: &str, key: &str) -> Option<String> {
            let pat = format!("\"{key}\": \"");
            let start = line.find(&pat)? + pat.len();
            let rest = line.get(start..)?;
            Some(rest.get(..rest.find('"')?)?.to_string())
        }
        fn num_field(line: &str, key: &str) -> Option<i128> {
            let pat = format!("\"{key}\": ");
            let start = line.find(&pat)? + pat.len();
            let rest = line.get(start..)?;
            let end = rest
                .find(|c: char| !c.is_ascii_digit() && c != '-')
                .unwrap_or(rest.len());
            rest.get(..end)?.parse().ok()
        }

        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| "empty input".to_string())?;
        let at = num_field(header, "at_s").ok_or_else(|| format!("bad header: {header:?}"))?;
        let at = i64::try_from(at).map_err(|_| format!("at_s out of range: {at}"))?;
        let mut snap = Snapshot::new(Timestamp(at));
        for line in lines {
            let line = line.trim();
            if !line.contains("\"name\"") {
                continue; // structural lines: "metrics": [ … ]}
            }
            let err = || format!("bad metric line: {line:?}");
            let name = str_field(line, "name").ok_or_else(err)?;
            let kind = str_field(line, "kind").ok_or_else(err)?;
            let value = num_field(line, "value").ok_or_else(err)?;
            match kind.as_str() {
                "counter" => {
                    let v = u64::try_from(value).map_err(|_| err())?;
                    snap.push_counter(&name, v);
                }
                "gauge" => {
                    let v = i64::try_from(value).map_err(|_| err())?;
                    snap.push_gauge(&name, v);
                }
                _ => return Err(err()),
            }
        }
        Ok(snap)
    }

    /// Compare this snapshot (the baseline) against a `newer` one:
    /// counter/gauge deltas, added and removed metrics, and a percentile
    /// shift summary for every expanded histogram. The rendering is
    /// canonical — sorted names, stable format — so diffs diff.
    pub fn diff(&self, newer: &Snapshot) -> SnapshotDiff {
        use std::collections::BTreeSet;
        let names: BTreeSet<&String> = self.entries.keys().chain(newer.entries.keys()).collect();
        let (mut added, mut removed, mut changed, mut unchanged) = (0usize, 0usize, 0usize, 0usize);
        let mut body = String::new();
        let widen = |v: &Value| match v {
            Value::Counter(c) => i128::from(*c),
            Value::Gauge(g) => i128::from(*g),
        };
        for name in &names {
            match (self.entries.get(*name), newer.entries.get(*name)) {
                (Some(a), Some(b)) if widen(a) == widen(b) => unchanged += 1,
                (Some(a), Some(b)) => {
                    changed += 1;
                    let (va, vb) = (widen(a), widen(b));
                    let _ = writeln!(
                        body,
                        "~ {name} [{}] {va} -> {vb} (delta {:+})",
                        b.kind(),
                        vb - va
                    );
                }
                (Some(a), None) => {
                    removed += 1;
                    let _ = writeln!(body, "- {name} = {}", widen(a));
                }
                (None, Some(b)) => {
                    added += 1;
                    let _ = writeln!(body, "+ {name} = {}", widen(b));
                }
                (None, None) => {}
            }
        }
        // Histogram shift: every `<prefix>.le_inf` marks an expanded
        // histogram; recover nearest-rank percentiles from the cumulative
        // bucket counters on both sides.
        let prefixes: BTreeSet<&str> = names
            .iter()
            .filter_map(|n| n.strip_suffix(".le_inf"))
            .collect();
        for prefix in prefixes {
            let render = |snap: &Snapshot, permille: u64| {
                snap.percentile_from_buckets(prefix, permille)
                    .unwrap_or_else(|| "none".to_string())
            };
            let _ = writeln!(
                body,
                "histogram {prefix}: p50 {} -> {}, p95 {} -> {}, p99 {} -> {}",
                render(self, 500),
                render(newer, 500),
                render(self, 950),
                render(newer, 950),
                render(self, 990),
                render(newer, 990),
            );
        }
        let text = format!(
            "profile diff a_t={} b_t={} changed={changed} added={added} removed={removed} \
             unchanged={unchanged}\n{body}",
            self.at.as_seconds(),
            newer.at.as_seconds(),
        );
        SnapshotDiff {
            text,
            changed,
            added,
            removed,
            unchanged,
        }
    }

    /// Nearest-rank percentile of an expanded histogram (`prefix.le_*`
    /// cumulative counters), as the bucket bound it lands in, `"overflow"`
    /// above the last bound, or `None` when the histogram is empty or
    /// absent.
    fn percentile_from_buckets(&self, prefix: &str, permille: u64) -> Option<String> {
        let count = u64::try_from(self.value(&format!("{prefix}.count"))?).ok()?;
        if count == 0 {
            return None;
        }
        let rank = (count * permille).div_ceil(1000);
        let le = format!("{prefix}.le_");
        let mut buckets: Vec<(i64, u64)> = Vec::new();
        for (name, value) in self.entries.range(le.clone()..) {
            let Some(suffix) = name.strip_prefix(&le) else {
                break;
            };
            let Ok(bound) = suffix.parse::<i64>() else {
                continue; // le_inf (or a foreign name sharing the prefix)
            };
            if let Value::Counter(cumulative) = value {
                buckets.push((bound, *cumulative));
            }
        }
        // Lexicographic map order is not numeric bound order (le_10 < le_5).
        buckets.sort_unstable();
        for (bound, cumulative) in buckets {
            if cumulative >= rank {
                return Some(bound.to_string());
            }
        }
        Some("overflow".to_string())
    }

    /// Canonical JSON rendering: one metric object per line, sorted.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\"at_s\": {},", self.at.as_seconds());
        let _ = writeln!(out, "\"metrics\": [");
        let last = self.entries.len().saturating_sub(1);
        for (i, (name, value)) in self.entries.iter().enumerate() {
            let v = match value {
                Value::Counter(c) => i128::from(*c),
                Value::Gauge(g) => i128::from(*g),
            };
            let comma = if i == last { "" } else { "," };
            let _ = writeln!(
                out,
                "{{\"name\": \"{name}\", \"kind\": \"{}\", \"value\": {v}}}{comma}",
                value.kind()
            );
        }
        out.push_str("]}\n");
        out
    }
}

/// The result of [`Snapshot::diff`]: summary counts plus a canonical text
/// rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDiff {
    text: String,
    /// Metrics present in both snapshots with different values.
    pub changed: usize,
    /// Metrics only in the newer snapshot.
    pub added: usize,
    /// Metrics only in the baseline snapshot.
    pub removed: usize,
    /// Metrics with identical values on both sides.
    pub unchanged: usize,
}

impl SnapshotDiff {
    /// The canonical text rendering: a summary header, one line per
    /// difference in sorted name order, then histogram percentile shifts.
    pub fn render(&self) -> &str {
        &self.text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = Registry::new();
        let c = r.counter("a.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same cell.
        assert_eq!(r.counter("a.count").get(), 5);
        let g = r.gauge("a.depth");
        g.set(7);
        g.raise_to(3); // lower: no-op
        assert_eq!(g.get(), 7);
        g.raise_to(11);
        assert_eq!(g.get(), 11);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn kind_mismatch_hands_back_detached_cell() {
        let r = Registry::new();
        let c = r.counter("x");
        c.inc();
        // Same name as a gauge: detached, does not clobber the counter.
        let g = r.gauge("x");
        g.set(99);
        let snap = r.snapshot(Timestamp(0));
        assert_eq!(snap.value("x"), Some(1));
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter("z.last").add(1);
        r.counter("a.first").add(2);
        r.gauge("m.mid").set(-3);
        let snap = r.snapshot(Timestamp(60));
        assert_eq!(
            snap.to_csv(),
            "name,kind,value\na.first,counter,2\nm.mid,gauge,-3\nz.last,counter,1\n"
        );
        // Two captures of the same state are byte-identical.
        assert_eq!(snap.to_csv(), r.snapshot(Timestamp(60)).to_csv());
        assert_eq!(snap.to_json(), r.snapshot(Timestamp(60)).to_json());
        assert!(snap.to_json().starts_with("{\"at_s\": 60,\n"));
    }

    #[test]
    fn json_roundtrips_through_from_json() {
        let r = Registry::new();
        r.counter("a.count").add(7);
        r.gauge("b.depth").set(-3);
        let mut snap = r.snapshot(Timestamp(120));
        let mut h = crate::FixedHistogram::new(&[1, 5]);
        h.observe(0);
        h.observe(9);
        snap.push_histogram("lat", &h);
        let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap, "parse(render(s)) == s");
        assert_eq!(parsed.to_json(), snap.to_json());
        // Garbage is rejected, not mis-parsed.
        assert!(Snapshot::from_json("").is_err());
        assert!(Snapshot::from_json("not json").is_err());
        let bad = "{\"at_s\": 0,\n\"metrics\": [\n{\"name\": \"x\", \"kind\": \"blob\", \
                   \"value\": 1}\n]}\n";
        assert!(Snapshot::from_json(bad).is_err());
    }

    #[test]
    fn diff_reports_deltas_adds_removes_and_histogram_shift() {
        let mut a = Snapshot::new(Timestamp(100));
        a.push_counter("events", 10);
        a.push_counter("gone", 1);
        a.push_gauge("depth", 4);
        let mut ha = crate::FixedHistogram::new(&[1, 10]);
        for _ in 0..99 {
            ha.observe(0);
        }
        ha.observe(8);
        a.push_histogram("gap", &ha);

        let mut b = Snapshot::new(Timestamp(200));
        b.push_counter("events", 25);
        b.push_gauge("depth", 4);
        b.push_counter("fresh", 2);
        let mut hb = crate::FixedHistogram::new(&[1, 10]);
        for _ in 0..50 {
            hb.observe(0);
        }
        for _ in 0..50 {
            hb.observe(100);
        }
        b.push_histogram("gap", &hb);

        let d = a.diff(&b);
        assert_eq!((d.added, d.removed), (1, 1));
        assert!(d.changed >= 2, "events plus shifted histogram buckets");
        let text = d.render();
        assert!(text.starts_with("profile diff a_t=100 b_t=200 "));
        assert!(text.contains("~ events [counter] 10 -> 25 (delta +15)"));
        assert!(text.contains("+ fresh = 2"));
        assert!(text.contains("- gone = 1"));
        assert!(!text.contains("~ depth"), "unchanged gauge stays silent");
        // The tail percentiles moved from the ≤1 bucket into overflow.
        assert!(
            text.contains("histogram gap: p50 1 -> 1, p95 1 -> overflow, p99 1 -> overflow"),
            "histogram shift line missing or wrong:\n{text}"
        );
        // Diffing identical snapshots is all-quiet.
        let same = a.diff(&a);
        assert_eq!((same.changed, same.added, same.removed), (0, 0, 0));
    }

    #[test]
    fn histogram_expands_cumulatively() {
        let mut h = crate::FixedHistogram::new(&[1, 5]);
        for v in [0, 1, 2, 7] {
            h.observe(v);
        }
        let mut snap = Snapshot::new(Timestamp(0));
        snap.push_histogram("lat", &h);
        assert_eq!(snap.value("lat.le_1"), Some(2));
        assert_eq!(snap.value("lat.le_5"), Some(3));
        assert_eq!(snap.value("lat.le_inf"), Some(4));
        assert_eq!(snap.value("lat.count"), Some(4));
        assert_eq!(snap.value("lat.sum"), Some(10));
    }
}
