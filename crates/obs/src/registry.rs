//! The metrics registry: interned-name counters and gauges with a
//! deterministic snapshot.
//!
//! Handles are `Arc`-backed atomics, so incrementing on a hot path is one
//! relaxed atomic op and never takes a lock; the registry's lock is touched
//! only on (cold) registration and snapshot. All values are integers:
//! float formatting is platform-honest but invites accidental
//! nondeterminism the moment someone averages, so ratios are left to the
//! consumers of the export.

use ctt_core::time::Timestamp;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere (still usable, never exported).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depths, high-water
/// marks). Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not registered anywhere (still usable, never exported).
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if `v` is larger (high-water semantics).
    pub fn raise_to(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
}

/// The registry: a clonable handle to a shared name → metric map.
///
/// Registering an already-known name returns a handle to the *existing*
/// cell (this is what lets the broker keep its legacy getters as thin
/// views). A name registered as one kind and requested as the other keeps
/// its original kind and hands back a detached cell — panic-free by
/// design, since registration sits close to hot paths.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            Metric::Gauge(_) => Counter::detached(),
        }
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            Metric::Counter(_) => Gauge::detached(),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Capture every registered metric at logical time `at`. The snapshot
    /// owns plain integers — reading it later cannot race with writers.
    pub fn snapshot(&self, at: Timestamp) -> Snapshot {
        let mut snap = Snapshot::new(at);
        for (name, metric) in self.inner.lock().iter() {
            match metric {
                Metric::Counter(c) => snap.push_counter(name, c.get()),
                Metric::Gauge(g) => snap.push_gauge(name, g.get()),
            }
        }
        snap
    }
}

/// One exported value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    Counter(u64),
    Gauge(i64),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
        }
    }
}

/// A point-in-time export of metrics, keyed and rendered in sorted name
/// order. Byte-identical across replays of a deterministic run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    at: Timestamp,
    entries: BTreeMap<String, Value>,
}

impl Snapshot {
    /// An empty snapshot stamped with logical time `at`.
    pub fn new(at: Timestamp) -> Self {
        Snapshot {
            at,
            entries: BTreeMap::new(),
        }
    }

    /// The logical capture time.
    pub fn at(&self) -> Timestamp {
        self.at
    }

    /// Add (or overwrite) a counter-valued entry.
    pub fn push_counter(&mut self, name: &str, value: u64) {
        self.entries.insert(name.to_string(), Value::Counter(value));
    }

    /// Add (or overwrite) a gauge-valued entry.
    pub fn push_gauge(&mut self, name: &str, value: i64) {
        self.entries.insert(name.to_string(), Value::Gauge(value));
    }

    /// Expand a fixed-bucket histogram into `name.le_<bound>` cumulative
    /// bucket counters plus `name.count` and `name.sum`.
    pub fn push_histogram(&mut self, name: &str, h: &crate::FixedHistogram) {
        let mut cumulative = 0u64;
        for (bound, count) in h.buckets() {
            cumulative += count;
            self.push_counter(&format!("{name}.le_{bound}"), cumulative);
        }
        cumulative += h.overflow();
        self.push_counter(&format!("{name}.le_inf"), cumulative);
        self.push_counter(&format!("{name}.count"), h.count());
        self.push_gauge(&format!("{name}.sum"), h.sum());
    }

    /// The value of `name`, as a widened integer, if present.
    pub fn value(&self, name: &str) -> Option<i128> {
        self.entries.get(name).map(|v| match v {
            Value::Counter(c) => i128::from(*c),
            Value::Gauge(g) => i128::from(*g),
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Canonical CSV rendering: header then one sorted row per metric.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,kind,value\n");
        for (name, value) in &self.entries {
            let _ = match value {
                Value::Counter(c) => writeln!(out, "{name},counter,{c}"),
                Value::Gauge(g) => writeln!(out, "{name},gauge,{g}"),
            };
        }
        out
    }

    /// Canonical JSON rendering: one metric object per line, sorted.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\"at_s\": {},", self.at.as_seconds());
        let _ = writeln!(out, "\"metrics\": [");
        let last = self.entries.len().saturating_sub(1);
        for (i, (name, value)) in self.entries.iter().enumerate() {
            let v = match value {
                Value::Counter(c) => i128::from(*c),
                Value::Gauge(g) => i128::from(*g),
            };
            let comma = if i == last { "" } else { "," };
            let _ = writeln!(
                out,
                "{{\"name\": \"{name}\", \"kind\": \"{}\", \"value\": {v}}}{comma}",
                value.kind()
            );
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = Registry::new();
        let c = r.counter("a.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same cell.
        assert_eq!(r.counter("a.count").get(), 5);
        let g = r.gauge("a.depth");
        g.set(7);
        g.raise_to(3); // lower: no-op
        assert_eq!(g.get(), 7);
        g.raise_to(11);
        assert_eq!(g.get(), 11);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn kind_mismatch_hands_back_detached_cell() {
        let r = Registry::new();
        let c = r.counter("x");
        c.inc();
        // Same name as a gauge: detached, does not clobber the counter.
        let g = r.gauge("x");
        g.set(99);
        let snap = r.snapshot(Timestamp(0));
        assert_eq!(snap.value("x"), Some(1));
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter("z.last").add(1);
        r.counter("a.first").add(2);
        r.gauge("m.mid").set(-3);
        let snap = r.snapshot(Timestamp(60));
        assert_eq!(
            snap.to_csv(),
            "name,kind,value\na.first,counter,2\nm.mid,gauge,-3\nz.last,counter,1\n"
        );
        // Two captures of the same state are byte-identical.
        assert_eq!(snap.to_csv(), r.snapshot(Timestamp(60)).to_csv());
        assert_eq!(snap.to_json(), r.snapshot(Timestamp(60)).to_json());
        assert!(snap.to_json().starts_with("{\"at_s\": 60,\n"));
    }

    #[test]
    fn histogram_expands_cumulatively() {
        let mut h = crate::FixedHistogram::new(&[1, 5]);
        for v in [0, 1, 2, 7] {
            h.observe(v);
        }
        let mut snap = Snapshot::new(Timestamp(0));
        snap.push_histogram("lat", &h);
        assert_eq!(snap.value("lat.le_1"), Some(2));
        assert_eq!(snap.value("lat.le_5"), Some(3));
        assert_eq!(snap.value("lat.le_inf"), Some(4));
        assert_eq!(snap.value("lat.count"), Some(4));
        assert_eq!(snap.value("lat.sum"), Some(10));
    }
}
