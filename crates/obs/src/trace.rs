//! Dispatch-tracing building blocks: a fixed-bucket integer histogram and
//! a bounded trace sink.
//!
//! Both are plain (non-atomic) structs: the event-dispatch loop that feeds
//! them is single-threaded by construction, and plain integer increments
//! keep the instrumented pop path within the bench-gated overhead budget.

use ctt_core::time::Timestamp;
use std::fmt::Write as _;

/// A histogram over `i64` observations with fixed upper bounds, chosen at
/// construction. Observation is a short linear scan (the bound lists used
/// on the dispatch path have ≤ 10 entries), one add, and two updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedHistogram {
    bounds: Vec<i64>,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: i64,
}

impl FixedHistogram {
    /// A histogram with the given inclusive upper bounds. Bounds are
    /// sorted and deduplicated, so any order is accepted.
    pub fn new(bounds: &[i64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = vec![0; bounds.len()];
        FixedHistogram {
            bounds,
            buckets,
            overflow: 0,
            count: 0,
            sum: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: i64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        for (bound, bucket) in self.bounds.iter().zip(self.buckets.iter_mut()) {
            if v <= *bound {
                *bucket += 1;
                return;
            }
        }
        self.overflow += 1;
    }

    /// `(upper bound, non-cumulative count)` per bucket, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .zip(self.buckets.iter().copied())
    }

    /// Observations above the last bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (wrapping).
    pub fn sum(&self) -> i64 {
        self.sum
    }

    /// Percentile estimate from the bucket counts, as the inclusive upper
    /// bound of the bucket where the requested rank lands. `permille` is
    /// the percentile × 10 (p50 → 500, p99 → 990). Integer-only, so
    /// renders stay byte-identical across replays.
    ///
    /// Returns [`PercentileEstimate::Overflow`] when the rank falls above
    /// the last bound, and `None` when the histogram is empty or the
    /// permille is out of range.
    pub fn percentile(&self, permille: u32) -> Option<PercentileEstimate> {
        if self.count == 0 || permille == 0 || permille > 1000 {
            return None;
        }
        // Nearest-rank: the smallest rank r with r ≥ permille/1000 of count.
        let rank = (self.count * u64::from(permille)).div_ceil(1000);
        let mut cumulative = 0u64;
        for (bound, n) in self.buckets() {
            cumulative += n;
            if cumulative >= rank {
                return Some(PercentileEstimate::Le(bound));
            }
        }
        Some(PercentileEstimate::Overflow)
    }
}

/// Where a percentile rank lands in a [`FixedHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PercentileEstimate {
    /// At or below this bucket bound.
    Le(i64),
    /// Above the last bound (in the overflow region).
    Overflow,
}

impl std::fmt::Display for PercentileEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PercentileEstimate::Le(bound) => write!(f, "{bound}"),
            PercentileEstimate::Overflow => write!(f, "overflow"),
        }
    }
}

/// One traced dispatch: the event's total-order key plus the payload's
/// discriminant label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Logical dispatch time.
    pub time: Timestamp,
    /// Priority class of the event key.
    pub priority: u8,
    /// Monotonic schedule sequence of the event key.
    pub seq: u64,
    /// Payload discriminant (e.g. `"node-tx"`).
    pub label: &'static str,
}

/// A bounded sink of [`TraceEvent`]s: the first `capacity` dispatches are
/// kept verbatim, the rest are counted. Bounded-by-construction so a
/// week-long soak cannot balloon memory; the drop count keeps the record
/// honest about truncation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSink {
    capacity: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl TraceSink {
    /// A sink keeping at most `capacity` events (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceSink {
            capacity,
            events: Vec::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Record one dispatch.
    pub fn record(&mut self, time: Timestamp, priority: u8, seq: u64, label: &'static str) {
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent {
                time,
                priority,
                seq,
                label,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in dispatch order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Dispatches that arrived after the sink was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Canonical rendering: one line per event in dispatch order, then the
    /// drop count. Byte-identical across replays.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(
                out,
                "t={} p{} seq={} {}",
                e.time.as_seconds(),
                e.priority,
                e.seq,
                e.label
            );
        }
        let _ = writeln!(
            out,
            "trace kept={} dropped={}",
            self.events.len(),
            self.dropped
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let mut h = FixedHistogram::new(&[10, 1, 5, 5]); // unsorted + dup
        for v in [0, 1, 2, 5, 6, 10, 11, 100] {
            h.observe(v);
        }
        let got: Vec<(i64, u64)> = h.buckets().collect();
        assert_eq!(got, vec![(1, 2), (5, 2), (10, 2)]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 135);
    }

    #[test]
    fn percentiles_walk_cumulative_buckets() {
        let mut h = FixedHistogram::new(&[1, 5, 10]);
        // 90 in the ≤1 bucket, 5 in ≤5, 4 in ≤10, 1 overflow.
        for _ in 0..90 {
            h.observe(0);
        }
        for _ in 0..5 {
            h.observe(3);
        }
        for _ in 0..4 {
            h.observe(9);
        }
        h.observe(1000);
        assert_eq!(h.percentile(500), Some(PercentileEstimate::Le(1)));
        assert_eq!(h.percentile(900), Some(PercentileEstimate::Le(1)));
        assert_eq!(h.percentile(950), Some(PercentileEstimate::Le(5)));
        assert_eq!(h.percentile(990), Some(PercentileEstimate::Le(10)));
        assert_eq!(h.percentile(1000), Some(PercentileEstimate::Overflow));
        assert_eq!(format!("{}", h.percentile(990).unwrap()), "10");
        assert_eq!(format!("{}", h.percentile(1000).unwrap()), "overflow");
    }

    #[test]
    fn percentile_edge_cases() {
        let empty = FixedHistogram::new(&[1]);
        assert_eq!(empty.percentile(500), None, "empty histogram");
        let mut h = FixedHistogram::new(&[1]);
        h.observe(0);
        assert_eq!(h.percentile(0), None, "p0 is out of range");
        assert_eq!(h.percentile(1001), None, "beyond p100");
        assert_eq!(h.percentile(1), Some(PercentileEstimate::Le(1)));
        assert_eq!(h.percentile(1000), Some(PercentileEstimate::Le(1)));
        // All observations above every bound.
        let mut o = FixedHistogram::new(&[1]);
        o.observe(99);
        assert_eq!(o.percentile(500), Some(PercentileEstimate::Overflow));
    }

    #[test]
    fn trace_sink_keeps_head_and_counts_tail() {
        let mut t = TraceSink::new(2);
        t.record(Timestamp(1), 0, 0, "a");
        t.record(Timestamp(2), 1, 1, "b");
        t.record(Timestamp(3), 2, 2, "c");
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(
            t.render(),
            "t=1 p0 seq=0 a\nt=2 p1 seq=1 b\ntrace kept=2 dropped=1\n"
        );
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut t = TraceSink::new(0);
        t.record(Timestamp(0), 0, 0, "x");
        t.record(Timestamp(1), 0, 1, "y");
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.dropped(), 1);
    }
}
