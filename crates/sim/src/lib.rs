//! # ctt-sim — deterministic discrete-event core
//!
//! The CTT system is event-driven end to end (LoRaWAN uplinks → MQTT →
//! TSDB → dataport twins), and the simulation must replay byte-identically:
//! the determinism suite compares alarm traces, ledgers, and TSDB contents
//! across runs. This crate is the one scheduling substrate every time-driven
//! layer dispatches through:
//!
//! * an [`EventQueue`]: a binary-heap calendar queue keyed by
//!   `(Timestamp, priority class, monotonic sequence number)`. Two events at
//!   the same instant are ordered first by their priority class, then by
//!   the order they were scheduled — so same-instant ordering is pinned and
//!   replay-stable, never a heap-internals accident;
//! * a [`SimClock`]: the single monotone notion of "now", advanced only by
//!   event dispatch;
//! * a [`Schedulable`] trait for components that know when they next need
//!   to run (radio window deadlines, dataport tick cadences, chaos
//!   transitions), so the driving loop registers them instead of polling.
//!
//! The queue is payload-generic and allocation-lean: `O(log n)` push/pop,
//! nothing else. Policy — what the priority classes mean, what an event
//! does — belongs to the caller.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use ctt_core::time::Timestamp;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// The total-order key of one scheduled event.
///
/// Events dispatch in ascending `(time, priority, seq)` order. `seq` is
/// assigned monotonically by [`EventQueue::schedule`], so events that share
/// a timestamp and a priority class run in the order they were scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// When the event fires.
    pub time: Timestamp,
    /// Priority class: lower runs first among same-instant events.
    pub priority: u8,
    /// Monotonic schedule order, the final tie-break.
    pub seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: EventKey,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

/// A deterministic calendar queue: a min-heap of events keyed by
/// [`EventKey`].
///
/// `BinaryHeap` alone is not replay-stable for equal keys; the monotonic
/// `seq` component makes every key unique, so the dequeue order is a pure
/// function of the schedule calls — independent of heap layout, platform,
/// or allocator.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` at `time` in the given priority class, returning
    /// the key it was filed under. `O(log n)`.
    pub fn schedule(&mut self, time: Timestamp, priority: u8, payload: E) -> EventKey {
        let key = EventKey {
            time,
            priority,
            seq: self.next_seq,
        };
        self.next_seq = self.next_seq.wrapping_add(1);
        self.heap.push(Reverse(Entry { key, payload }));
        key
    }

    /// The key of the next event to fire, without removing it.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|Reverse(e)| e.key)
    }

    /// Remove and return the next event. `O(log n)`.
    pub fn pop(&mut self) -> Option<(EventKey, E)> {
        self.heap.pop().map(|Reverse(e)| (e.key, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The simulation's single monotone clock. Time only moves forward: an
/// `advance` to the past is clamped to the current instant (panic-free —
/// this sits on the dispatch hot path), so a well-ordered event stream is
/// reflected exactly and a misordered one cannot rewind history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimClock {
    now: Timestamp,
}

impl SimClock {
    /// A clock starting at `start`.
    pub fn new(start: Timestamp) -> Self {
        SimClock { now: start }
    }

    /// The current instant.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Advance to `to` (monotone: earlier instants are clamped to now).
    /// Returns the clock's time after the advance.
    pub fn advance(&mut self, to: Timestamp) -> Timestamp {
        if to > self.now {
            self.now = to;
        }
        self.now
    }
}

/// A component that knows when it next needs to run.
///
/// The driving loop asks after each dispatch and (re)schedules accordingly
/// — components register their cadences and deadlines instead of being
/// polled every iteration. `None` means "nothing pending".
pub trait Schedulable {
    /// The next instant (≥ `now`) at which this component wants an event,
    /// or `None` if it has nothing scheduled.
    fn next_event(&self, now: Timestamp) -> Option<Timestamp>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_order_is_time_then_priority_then_seq() {
        let mut q = EventQueue::new();
        q.schedule(Timestamp(20), 0, "late");
        q.schedule(Timestamp(10), 2, "t10-p2");
        q.schedule(Timestamp(10), 0, "t10-p0-first");
        q.schedule(Timestamp(10), 0, "t10-p0-second");
        q.schedule(Timestamp(10), 1, "t10-p1");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(
            order,
            ["t10-p0-first", "t10-p0-second", "t10-p1", "t10-p2", "late"]
        );
    }

    #[test]
    fn keys_are_unique_and_monotonic_in_seq() {
        let mut q = EventQueue::new();
        let a = q.schedule(Timestamp(5), 3, ());
        let b = q.schedule(Timestamp(5), 3, ());
        assert!(a < b, "{a:?} vs {b:?}");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_key(), Some(a));
        assert_eq!(q.pop().map(|(k, _)| k), Some(a));
        assert_eq!(q.pop().map(|(k, _)| k), Some(b));
        assert!(q.is_empty());
    }

    #[test]
    fn clock_is_monotone() {
        let mut c = SimClock::new(Timestamp(100));
        assert_eq!(c.now(), Timestamp(100));
        assert_eq!(c.advance(Timestamp(150)), Timestamp(150));
        // A stale instant cannot rewind the clock.
        assert_eq!(c.advance(Timestamp(120)), Timestamp(150));
        assert_eq!(c.now(), Timestamp(150));
    }
}
