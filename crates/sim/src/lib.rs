//! # ctt-sim — deterministic discrete-event core
//!
//! The CTT system is event-driven end to end (LoRaWAN uplinks → MQTT →
//! TSDB → dataport twins), and the simulation must replay byte-identically:
//! the determinism suite compares alarm traces, ledgers, and TSDB contents
//! across runs. This crate is the one scheduling substrate every time-driven
//! layer dispatches through:
//!
//! * an [`EventQueue`]: a binary-heap calendar queue keyed by
//!   `(Timestamp, priority class, monotonic sequence number)`. Two events at
//!   the same instant are ordered first by their priority class, then by
//!   the order they were scheduled — so same-instant ordering is pinned and
//!   replay-stable, never a heap-internals accident;
//! * a [`SimClock`]: the single monotone notion of "now", advanced only by
//!   event dispatch;
//! * a [`Schedulable`] trait for components that know when they next need
//!   to run (radio window deadlines, dataport tick cadences, chaos
//!   transitions), so the driving loop registers them instead of polling.
//!
//! The queue is payload-generic and allocation-lean: `O(log n)` push/pop,
//! nothing else. Policy — what the priority classes mean, what an event
//! does — belongs to the caller.
//!
//! The pop path is the single choke point every time-driven layer passes
//! through, so observability hangs here: an optional [`QueueObs`] records
//! per-priority-class dispatch counts, an inter-event time histogram, and
//! a bounded trace of `(EventKey, payload discriminant)` — one attach call
//! yields a scheduling profile for the whole run without instrumenting
//! each subsystem. The queue always tracks its depth high-water mark
//! (one comparison per schedule).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod shard;

pub use shard::{fnv1a_64, ShardedEventQueue, TimeSlice};

use ctt_core::time::Timestamp;
use ctt_obs::{FixedHistogram, Snapshot, TraceSink};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::fmt;

/// The total-order key of one scheduled event.
///
/// Events dispatch in ascending `(time, priority, seq)` order. `seq` is
/// assigned monotonically by [`EventQueue::schedule`], so events that share
/// a timestamp and a priority class run in the order they were scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// When the event fires.
    pub time: Timestamp,
    /// Priority class: lower runs first among same-instant events.
    pub priority: u8,
    /// Monotonic schedule order, the final tie-break.
    pub seq: u64,
}

/// Bits of `seq` kept in the packed word. Sequence numbers are assigned
/// from 0 per queue, so 2^56 schedules per queue is unreachable in any run
/// we model; the packed word is the *only* per-entry copy of the key (the
/// heap entry stays 2 words + payload, which is what keeps sift swaps
/// cheap), so a popped key's `seq` is the 56-bit value.
const PACKED_SEQ_BITS: u32 = 56;
const PACKED_SEQ_MASK: u64 = (1 << PACKED_SEQ_BITS) - 1;

/// Pack `(time, priority, seq)` into one `u128` whose integer order equals
/// the lexicographic key order. Heap sift compares are then a single wide
/// compare instead of a three-field chain — measurable on the small-fleet
/// dispatch path where pop/reschedule dominates. The time bias flips the
/// sign bit so negative timestamps (pre-epoch) still sort below positive.
fn pack_key(key: EventKey) -> u128 {
    let time = (key.time.as_seconds() as u64) ^ (1u64 << 63);
    (u128::from(time) << 64)
        | (u128::from(key.priority) << PACKED_SEQ_BITS)
        | u128::from(key.seq & PACKED_SEQ_MASK)
}

/// Inverse of [`pack_key`]. Exact for any key whose `seq` fits
/// [`PACKED_SEQ_BITS`] — i.e. every key a real queue ever assigns.
fn unpack_key(packed: u128) -> EventKey {
    let low = packed as u64;
    EventKey {
        time: Timestamp((((packed >> 64) as u64) ^ (1u64 << 63)) as i64),
        priority: (low >> PACKED_SEQ_BITS) as u8,
        seq: low & PACKED_SEQ_MASK,
    }
}

#[derive(Debug)]
struct Entry<E> {
    /// The packed key (see [`pack_key`]): the only compared field and the
    /// only stored copy — keys are unpacked on pop/peek.
    packed: u128,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.packed == other.packed
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.packed.cmp(&other.packed)
    }
}

/// Dispatch instrumentation attached to an [`EventQueue`] via
/// [`EventQueue::attach_obs`].
///
/// All state is plain (non-atomic) integers: the dispatch loop is
/// single-threaded by construction, and the whole record step is a handful
/// of adds — the `obs_overhead` bench gates it at ≤ 20% of the bare
/// dispatch loop (measured 11-15% on the single-core CI container; the
/// packed-key entry shrink made the bare pop cheaper, which raised the
/// *relative* share of the unchanged record cost). The payload
/// discriminant comes from a caller-supplied labelling function, so the
/// queue stays payload-generic.
pub struct QueueObs<E> {
    label_of: fn(&E) -> &'static str,
    /// Dispatch count per priority class, indexed by class.
    by_priority: Vec<u64>,
    dispatched: u64,
    last_time: Option<Timestamp>,
    /// Seconds between consecutive dispatches.
    inter_event: FixedHistogram,
    trace: Option<TraceSink>,
}

impl<E> fmt::Debug for QueueObs<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueueObs")
            .field("dispatched", &self.dispatched)
            .field("by_priority", &self.by_priority)
            .field("trace", &self.trace.is_some())
            .finish()
    }
}

/// Inter-event time buckets (seconds): sub-second bursts up to the hour.
const INTER_EVENT_BOUNDS: &[i64] = &[0, 1, 2, 5, 15, 60, 300, 900, 3600];

impl<E> QueueObs<E> {
    /// Instrumentation using `label_of` to name payload discriminants.
    pub fn new(label_of: fn(&E) -> &'static str) -> Self {
        QueueObs {
            label_of,
            by_priority: Vec::new(),
            dispatched: 0,
            last_time: None,
            inter_event: FixedHistogram::new(INTER_EVENT_BOUNDS),
            trace: None,
        }
    }

    /// Also keep a bounded trace of the first `capacity` dispatches
    /// (builder style).
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace = Some(TraceSink::new(capacity));
        self
    }

    /// Enable the bounded trace sink in place. A fresh sink replaces any
    /// existing one; dispatch counts are untouched.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceSink::new(capacity));
    }

    /// Record one dispatched event.
    fn record(&mut self, key: EventKey, payload: &E) {
        self.dispatched += 1;
        let prio = usize::from(key.priority);
        if prio >= self.by_priority.len() {
            self.by_priority.resize(prio + 1, 0);
        }
        if let Some(slot) = self.by_priority.get_mut(prio) {
            *slot += 1;
        }
        if let Some(last) = self.last_time {
            self.inter_event
                .observe(key.time.as_seconds() - last.as_seconds());
        }
        self.last_time = Some(key.time);
        if let Some(trace) = self.trace.as_mut() {
            trace.record(key.time, key.priority, key.seq, (self.label_of)(payload));
        }
    }

    /// Record a dispatch performed externally — by a driver that popped
    /// this owner's event out of a [`ShardedEventQueue`] slice and
    /// dispatched it on the owner's behalf. Same accounting as an
    /// in-queue pop, so a mounted calendar keeps an accurate profile.
    pub fn record_dispatch(&mut self, key: EventKey, payload: &E) {
        self.record(key, payload);
    }

    /// Total events dispatched while attached.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Dispatch counts per priority class (index = class).
    pub fn dispatch_counts(&self) -> &[u64] {
        &self.by_priority
    }

    /// The inter-event time histogram (seconds between dispatches).
    pub fn inter_event(&self) -> &FixedHistogram {
        &self.inter_event
    }

    /// The bounded dispatch trace, when enabled.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Publish the dispatch profile into a snapshot under `sim.*` names.
    pub fn publish(&self, snap: &mut Snapshot) {
        snap.push_counter("sim.dispatch.total", self.dispatched);
        for (prio, count) in self.by_priority.iter().enumerate() {
            snap.push_counter(&format!("sim.dispatch.p{prio}"), *count);
        }
        snap.push_histogram("sim.inter_event_s", &self.inter_event);
        // Percentile gauges make gap regressions readable without
        // reconstructing them from the cumulative buckets; -1 encodes the
        // overflow region (above the last bound).
        for (permille, label) in [(500u32, "p50"), (950, "p95"), (990, "p99")] {
            if let Some(estimate) = self.inter_event.percentile(permille) {
                let v = match estimate {
                    ctt_obs::PercentileEstimate::Le(bound) => bound,
                    ctt_obs::PercentileEstimate::Overflow => -1,
                };
                snap.push_gauge(&format!("sim.inter_event_s.{label}"), v);
            }
        }
        if let Some(trace) = &self.trace {
            snap.push_counter("sim.trace.kept", trace.events().len() as u64);
            snap.push_counter("sim.trace.dropped", trace.dropped());
        }
    }
}

/// A deterministic calendar queue: a min-heap of events keyed by
/// [`EventKey`].
///
/// `BinaryHeap` alone is not replay-stable for equal keys; the monotonic
/// `seq` component makes every key unique, so the dequeue order is a pure
/// function of the schedule calls — independent of heap layout, platform,
/// or allocator.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    high_water: usize,
    obs: Option<QueueObs<E>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            high_water: 0,
            obs: None,
        }
    }

    /// Attach dispatch instrumentation. Counting starts at the next pop;
    /// a second attach replaces the first (counts restart from zero).
    pub fn attach_obs(&mut self, obs: QueueObs<E>) {
        self.obs = Some(obs);
    }

    /// The attached instrumentation, if any.
    pub fn obs(&self) -> Option<&QueueObs<E>> {
        self.obs.as_ref()
    }

    /// Mutable access to the attached instrumentation (e.g. to enable the
    /// trace sink mid-life without resetting dispatch counts).
    pub fn obs_mut(&mut self) -> Option<&mut QueueObs<E>> {
        self.obs.as_mut()
    }

    /// Schedule `payload` at `time` in the given priority class, returning
    /// the key it was filed under. `O(log n)`.
    pub fn schedule(&mut self, time: Timestamp, priority: u8, payload: E) -> EventKey {
        let key = EventKey {
            time,
            priority,
            seq: self.next_seq,
        };
        self.next_seq = self.next_seq.wrapping_add(1);
        self.heap.push(Reverse(Entry {
            packed: pack_key(key),
            payload,
        }));
        self.high_water = self.high_water.max(self.heap.len());
        key
    }

    /// The key of the next event to fire, without removing it.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|Reverse(e)| unpack_key(e.packed))
    }

    /// Remove and return the next event. `O(log n)`.
    pub fn pop(&mut self) -> Option<(EventKey, E)> {
        let popped = self
            .heap
            .pop()
            .map(|Reverse(e)| (unpack_key(e.packed), e.payload));
        if let Some(obs) = self.obs.as_mut() {
            if let Some((key, payload)) = popped.as_ref() {
                obs.record(*key, payload);
            }
        }
        popped
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The deepest the queue has ever been (pending events), across the
    /// queue's whole life.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Remove every pending event in dispatch order, *without* recording
    /// dispatch instrumentation. This is queue maintenance, not dispatch:
    /// it exists so a fleet can mount a pipeline's private calendar into a
    /// [`ShardedEventQueue`] (and unmount it back) with relative order and
    /// obs counters both intact. The seq counter keeps running, so events
    /// rescheduled after a drain still sort after everything drained.
    pub fn drain_ordered(&mut self) -> Vec<(EventKey, E)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(Reverse(e)) = self.heap.pop() {
            out.push((unpack_key(e.packed), e.payload));
        }
        out
    }
}

/// The simulation's single monotone clock. Time only moves forward: an
/// `advance` to the past is clamped to the current instant (panic-free —
/// this sits on the dispatch hot path), so a well-ordered event stream is
/// reflected exactly and a misordered one cannot rewind history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimClock {
    now: Timestamp,
}

impl SimClock {
    /// A clock starting at `start`.
    pub fn new(start: Timestamp) -> Self {
        SimClock { now: start }
    }

    /// The current instant.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Advance to `to` (monotone: earlier instants are clamped to now).
    /// Returns the clock's time after the advance.
    pub fn advance(&mut self, to: Timestamp) -> Timestamp {
        if to > self.now {
            self.now = to;
        }
        self.now
    }
}

/// A component that knows when it next needs to run.
///
/// The driving loop asks after each dispatch and (re)schedules accordingly
/// — components register their cadences and deadlines instead of being
/// polled every iteration. `None` means "nothing pending".
pub trait Schedulable {
    /// The next instant (≥ `now`) at which this component wants an event,
    /// or `None` if it has nothing scheduled.
    fn next_event(&self, now: Timestamp) -> Option<Timestamp>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_order_is_time_then_priority_then_seq() {
        let mut q = EventQueue::new();
        q.schedule(Timestamp(20), 0, "late");
        q.schedule(Timestamp(10), 2, "t10-p2");
        q.schedule(Timestamp(10), 0, "t10-p0-first");
        q.schedule(Timestamp(10), 0, "t10-p0-second");
        q.schedule(Timestamp(10), 1, "t10-p1");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(
            order,
            ["t10-p0-first", "t10-p0-second", "t10-p1", "t10-p2", "late"]
        );
    }

    #[test]
    fn keys_are_unique_and_monotonic_in_seq() {
        let mut q = EventQueue::new();
        let a = q.schedule(Timestamp(5), 3, ());
        let b = q.schedule(Timestamp(5), 3, ());
        assert!(a < b, "{a:?} vs {b:?}");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_key(), Some(a));
        assert_eq!(q.pop().map(|(k, _)| k), Some(a));
        assert_eq!(q.pop().map(|(k, _)| k), Some(b));
        assert!(q.is_empty());
    }

    #[test]
    fn packed_key_order_matches_lexicographic_order() {
        // Includes negative (pre-epoch) timestamps: the sign-bit bias must
        // keep integer order equal to EventKey order.
        let keys = [
            EventKey {
                time: Timestamp(-50),
                priority: 3,
                seq: 9,
            },
            EventKey {
                time: Timestamp(-50),
                priority: 3,
                seq: 10,
            },
            EventKey {
                time: Timestamp(0),
                priority: 0,
                seq: 2,
            },
            EventKey {
                time: Timestamp(0),
                priority: 1,
                seq: 1,
            },
            EventKey {
                time: Timestamp(7),
                priority: 0,
                seq: 0,
            },
        ];
        for pair in keys.windows(2) {
            if let [a, b] = pair {
                assert!(a < b, "test fixture must be ascending: {a:?} {b:?}");
                assert!(
                    pack_key(*a) < pack_key(*b),
                    "packed order broke: {a:?} {b:?}"
                );
            }
        }
        // The packed word is the only stored copy of the key: unpack must
        // round-trip exactly (seq below 2^56 always does).
        for key in keys {
            assert_eq!(unpack_key(pack_key(key)), key, "round-trip broke");
        }
    }

    #[test]
    fn drain_ordered_preserves_dispatch_order_and_skips_obs() {
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.attach_obs(QueueObs::new(|p| p));
        q.schedule(Timestamp(20), 1, "b");
        q.schedule(Timestamp(10), 0, "a");
        q.schedule(Timestamp(20), 2, "c");
        let drained = q.drain_ordered();
        let order: Vec<&str> = drained.iter().map(|(_, p)| *p).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert!(q.is_empty());
        // Maintenance, not dispatch: nothing recorded.
        assert_eq!(q.obs().map(QueueObs::dispatched), Some(0));
        // The seq counter keeps running across a drain.
        let key = q.schedule(Timestamp(30), 0, "d");
        assert_eq!(key.seq, 3);
    }

    #[test]
    fn high_water_tracks_peak_depth() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        q.schedule(Timestamp(1), 0, ());
        q.schedule(Timestamp(2), 0, ());
        q.schedule(Timestamp(3), 0, ());
        let _ = q.pop();
        let _ = q.pop();
        q.schedule(Timestamp(4), 0, ());
        // Peak was 3 even though the queue later shrank.
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn queue_obs_counts_and_traces_dispatches() {
        fn label(p: &&'static str) -> &'static str {
            p
        }
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.attach_obs(QueueObs::new(label).with_trace(2));
        q.schedule(Timestamp(10), 0, "tick");
        q.schedule(Timestamp(10), 1, "radio");
        q.schedule(Timestamp(70), 3, "node-tx");
        while q.pop().is_some() {}
        let obs = q.obs().expect("attached");
        assert_eq!(obs.dispatched(), 3);
        assert_eq!(obs.dispatch_counts(), &[1, 1, 0, 1]);
        // Inter-event gaps: 0 s and 60 s.
        assert_eq!(obs.inter_event().count(), 2);
        assert_eq!(obs.inter_event().sum(), 60);
        let trace = obs.trace().expect("trace enabled");
        assert_eq!(trace.events().len(), 2);
        assert_eq!(trace.dropped(), 1);
        assert_eq!(
            trace.render(),
            "t=10 p0 seq=0 tick\nt=10 p1 seq=1 radio\ntrace kept=2 dropped=1\n"
        );
    }

    #[test]
    fn queue_obs_publishes_dispatch_profile() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.attach_obs(QueueObs::new(|_| "byte"));
        q.schedule(Timestamp(0), 2, 7);
        q.schedule(Timestamp(5), 2, 8);
        while q.pop().is_some() {}
        let mut snap = Snapshot::new(Timestamp(5));
        q.obs().expect("attached").publish(&mut snap);
        assert_eq!(snap.value("sim.dispatch.total"), Some(2));
        assert_eq!(snap.value("sim.dispatch.p2"), Some(2));
        assert_eq!(snap.value("sim.inter_event_s.count"), Some(1));
    }

    #[test]
    fn clock_is_monotone() {
        let mut c = SimClock::new(Timestamp(100));
        assert_eq!(c.now(), Timestamp(100));
        assert_eq!(c.advance(Timestamp(150)), Timestamp(150));
        // A stale instant cannot rewind the clock.
        assert_eq!(c.advance(Timestamp(120)), Timestamp(150));
        assert_eq!(c.now(), Timestamp(150));
    }
}
