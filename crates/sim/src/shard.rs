//! Sharded event space: one logical calendar partitioned by owning entity.
//!
//! A fleet of cities is one event-driven system, but almost every event is
//! local to a single city (a node transmission, a radio window resolve, a
//! storage drain). [`ShardedEventQueue`] exploits that: events are filed
//! into per-shard calendars keyed by their owning entity (city, node,
//! gateway — hashed with the same FNV-1a 64 discipline `ShardedTsdb` uses,
//! so the whole stack shards by one rule), while the rare events that span
//! shards (fleet rollups, shared integration feeds) go to a dedicated
//! *cross* lane.
//!
//! Dispatch is by **time slice**: [`ShardedEventQueue::pop_slice`] removes
//! every pending event at the next instant and returns them grouped by
//! shard — groups in ascending shard index, events inside a group in the
//! shard's `(priority, seq)` order, cross-lane events separate. Because
//! same-slice groups touch disjoint shards, a driver may dispatch the
//! groups in parallel and merge outcomes in shard-index order (the
//! *sequence everywhere* rule from `ctt_core::pool`): the result is
//! byte-identical to dispatching the groups sequentially. Cross-lane
//! events run at the slice barrier, after every shard-local event of the
//! slice — that is the cross-shard routing rule, and it is what keeps a
//! rollup's view of the shards replay-stable.
//!
//! Per-shard `seq` counters are independent: the order *between* shards at
//! one instant is fixed by shard index, never by scheduling interleaving,
//! so adding a city to shard 3 cannot perturb shard 0's replay.
//!
//! Observability is always on and integer-cheap: per-shard dispatch
//! counters, a cross-lane counter, a slice count, and a slice-width
//! histogram ([`ShardedEventQueue::publish`] emits them under
//! `sim.shard<i>.dispatched`, `sim.cross_shard_events`, `sim.slices`,
//! `sim.slice_width`).

use crate::{EventKey, EventQueue};
use ctt_core::time::Timestamp;
use ctt_obs::{FixedHistogram, PercentileEstimate, Snapshot};
use std::fmt;
use std::fmt::Write as _;

/// FNV-1a 64-bit hash — deterministic (unlike `std`'s `RandomState`), so
/// shard assignment is replay-stable across processes and runs. Same
/// constants as `ShardedTsdb`'s private hasher; the parity test in
/// `crates/sim/tests/sharded_space.rs` pins the reference vectors.
pub fn fnv1a_64(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Slice-width buckets (events per instant): singleton ticks up to the
/// whole-fleet cadence bursts a 100k-node deployment produces.
const SLICE_WIDTH_BOUNDS: &[i64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096];

/// Every event pending at one instant, grouped by shard.
///
/// `shards` holds `(shard index, events)` pairs in ascending shard index;
/// each group is in that shard's `(priority, seq)` dispatch order and is
/// non-empty. `cross` holds the cross-lane events at the same instant, in
/// the lane's own dispatch order; they must run after all shard groups
/// (the slice barrier).
pub struct TimeSlice<E> {
    /// The instant every event in this slice fires at.
    pub time: Timestamp,
    /// Per-shard event groups, ascending shard index, each non-empty.
    pub shards: Vec<(usize, Vec<(EventKey, E)>)>,
    /// Cross-shard events: dispatch at the barrier, after every group.
    pub cross: Vec<(EventKey, E)>,
}

impl<E> TimeSlice<E> {
    /// Total events in the slice (shard groups plus cross lane).
    pub fn width(&self) -> usize {
        self.shards.iter().map(|(_, g)| g.len()).sum::<usize>() + self.cross.len()
    }
}

impl<E> fmt::Debug for TimeSlice<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimeSlice")
            .field("time", &self.time)
            .field("width", &self.width())
            .field("shard_groups", &self.shards.len())
            .field("cross", &self.cross.len())
            .finish()
    }
}

/// A deterministic calendar partitioned into per-entity shards plus a
/// cross-shard lane. See the module docs for the dispatch contract.
pub struct ShardedEventQueue<E> {
    shards: Vec<EventQueue<E>>,
    cross: EventQueue<E>,
    dispatched: Vec<u64>,
    cross_dispatched: u64,
    slices: u64,
    slice_width: FixedHistogram,
}

impl<E> fmt::Debug for ShardedEventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedEventQueue")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("slices", &self.slices)
            .field("cross_dispatched", &self.cross_dispatched)
            .finish()
    }
}

impl<E> ShardedEventQueue<E> {
    /// An empty space with `shards` shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedEventQueue {
            shards: (0..shards).map(|_| EventQueue::new()).collect(),
            cross: EventQueue::new(),
            dispatched: vec![0; shards],
            cross_dispatched: 0,
            slices: 0,
            slice_width: FixedHistogram::new(SLICE_WIDTH_BOUNDS),
        }
    }

    /// Number of shards (cross lane excluded).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `key` — FNV-1a of the entity key modulo the
    /// shard count, the same discipline `ShardedTsdb` routes series by.
    pub fn shard_of(&self, key: &str) -> usize {
        (fnv1a_64(key) % self.shards.len() as u64) as usize
    }

    /// Schedule `payload` at `time` in `priority` on `shard` (indices wrap
    /// modulo the shard count, keeping this panic-free on the hot path).
    /// Returns the key it was filed under; `seq` is per-shard.
    pub fn schedule(
        &mut self,
        shard: usize,
        time: Timestamp,
        priority: u8,
        payload: E,
    ) -> EventKey {
        let idx = shard % self.shards.len();
        match self.shards.get_mut(idx) {
            Some(q) => q.schedule(time, priority, payload),
            // Unreachable: `new` guarantees at least one shard.
            None => EventKey {
                time,
                priority,
                seq: 0,
            },
        }
    }

    /// Schedule a cross-shard event: it dispatches at the slice barrier,
    /// after every shard-local event of its instant.
    pub fn schedule_cross(&mut self, time: Timestamp, priority: u8, payload: E) -> EventKey {
        self.cross.schedule(time, priority, payload)
    }

    /// Total pending events across all shards and the cross lane.
    pub fn len(&self) -> usize {
        self.shards.iter().map(EventQueue::len).sum::<usize>() + self.cross.len()
    }

    /// Whether nothing is pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The earliest pending instant across every shard and the cross lane.
    pub fn next_time(&self) -> Option<Timestamp> {
        let mut next: Option<Timestamp> = None;
        for q in self.shards.iter().chain(std::iter::once(&self.cross)) {
            if let Some(key) = q.peek_key() {
                next = Some(next.map_or(key.time, |t| t.min(key.time)));
            }
        }
        next
    }

    /// Remove and return every event at the next pending instant. `None`
    /// when the space is empty.
    pub fn pop_slice(&mut self) -> Option<TimeSlice<E>> {
        self.pop_slice_until(Timestamp(i64::MAX), u8::MAX)
    }

    /// [`Self::pop_slice`] bounded by a run horizon: events admit while
    /// `time < end`, or at `time == end` only in priority classes
    /// `<= boundary_priority` — the same boundary rule the solo pipeline
    /// runner uses, which is what makes run-splitting invariant through
    /// the sharded path. Returns `None` when nothing qualifies.
    pub fn pop_slice_until(
        &mut self,
        end: Timestamp,
        boundary_priority: u8,
    ) -> Option<TimeSlice<E>> {
        let time = self.next_time()?;
        if time > end {
            return None;
        }
        let admit_all = time < end;
        let mut groups: Vec<(usize, Vec<(EventKey, E)>)> = Vec::new();
        for (idx, q) in self.shards.iter_mut().enumerate() {
            let group = drain_instant(q, time, admit_all, boundary_priority);
            if !group.is_empty() {
                if let Some(n) = self.dispatched.get_mut(idx) {
                    *n += group.len() as u64;
                }
                groups.push((idx, group));
            }
        }
        let cross = drain_instant(&mut self.cross, time, admit_all, boundary_priority);
        self.cross_dispatched += cross.len() as u64;
        let width = groups.iter().map(|(_, g)| g.len()).sum::<usize>() + cross.len();
        if width == 0 {
            // Everything at `time` sits beyond the boundary priority.
            return None;
        }
        self.slices += 1;
        self.slice_width.observe(width as i64);
        Some(TimeSlice {
            time,
            shards: groups,
            cross,
        })
    }

    /// Remove every pending shard-local event, as `(shard, events)` groups
    /// in ascending shard index, each group in dispatch order — *without*
    /// recording slice instrumentation. Maintenance for unmounting the
    /// space back into per-owner calendars; cross-lane events stay put
    /// (drain them with [`Self::drain_cross`]).
    pub fn drain_shards(&mut self) -> Vec<(usize, Vec<(EventKey, E)>)> {
        self.shards
            .iter_mut()
            .enumerate()
            .map(|(idx, q)| (idx, q.drain_ordered()))
            .collect()
    }

    /// Remove every pending cross-lane event in dispatch order, without
    /// recording instrumentation.
    pub fn drain_cross(&mut self) -> Vec<(EventKey, E)> {
        self.cross.drain_ordered()
    }

    /// Events dispatched through slices, per shard (index = shard).
    pub fn dispatched_by_shard(&self) -> &[u64] {
        &self.dispatched
    }

    /// Cross-lane events dispatched through slices.
    pub fn cross_dispatched(&self) -> u64 {
        self.cross_dispatched
    }

    /// Slices popped so far.
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// The slice-width histogram (events per popped slice).
    pub fn slice_width(&self) -> &FixedHistogram {
        &self.slice_width
    }

    /// Publish the space's dispatch profile under `sim.*` names.
    pub fn publish(&self, snap: &mut Snapshot) {
        for (idx, n) in self.dispatched.iter().enumerate() {
            snap.push_counter(&format!("sim.shard{idx}.dispatched"), *n);
        }
        snap.push_counter("sim.cross_shard_events", self.cross_dispatched);
        snap.push_counter("sim.slices", self.slices);
        snap.push_histogram("sim.slice_width", &self.slice_width);
        snap.push_gauge("sim.space.len", self.len() as i64);
    }

    /// Human-readable dispatch profile: shard table, cross lane, slice
    /// widths with percentile estimates.
    pub fn render_profile(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "space shards={} len={} slices={}",
            self.shards.len(),
            self.len(),
            self.slices
        );
        for (idx, (n, q)) in self.dispatched.iter().zip(self.shards.iter()).enumerate() {
            let _ = writeln!(
                out,
                "shard{idx} dispatched={n} pending={} high_water={}",
                q.len(),
                q.high_water()
            );
        }
        let _ = writeln!(
            out,
            "cross dispatched={} pending={}",
            self.cross_dispatched,
            self.cross.len()
        );
        let _ = write!(out, "slice_width");
        for (bound, count) in self.slice_width.buckets() {
            let _ = write!(out, " le_{bound}={count}");
        }
        let _ = writeln!(
            out,
            " overflow={} count={}",
            self.slice_width.overflow(),
            self.slice_width.count()
        );
        for (permille, label) in [(500u32, "p50"), (950, "p95"), (990, "p99")] {
            if let Some(estimate) = self.slice_width.percentile(permille) {
                let v = match estimate {
                    PercentileEstimate::Le(bound) => bound,
                    PercentileEstimate::Overflow => -1,
                };
                let _ = writeln!(out, "slice_width.{label}={v}");
            }
        }
        out
    }
}

/// Pop every event at `time` that the boundary rule admits, in the queue's
/// own dispatch order. Same-instant events are contiguous at the head and
/// priority-ordered, so the first violation ends the group.
fn drain_instant<E>(
    q: &mut EventQueue<E>,
    time: Timestamp,
    admit_all: bool,
    boundary_priority: u8,
) -> Vec<(EventKey, E)> {
    let mut group = Vec::new();
    while let Some(key) = q.peek_key() {
        if key.time != time || !(admit_all || key.priority <= boundary_priority) {
            break;
        }
        match q.pop() {
            Some(ev) => group.push(ev),
            None => break,
        }
    }
    group
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_parity_with_tsdb_discipline() {
        // Reference FNV-1a 64 vectors; `ShardedTsdb` uses the same
        // constants, so shard routing agrees across the stack.
        assert_eq!(fnv1a_64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn slice_groups_ascend_and_keep_per_shard_order() {
        let mut space: ShardedEventQueue<&'static str> = ShardedEventQueue::new(4);
        space.schedule(2, Timestamp(10), 1, "s2-p1");
        space.schedule(0, Timestamp(10), 3, "s0-p3");
        space.schedule(0, Timestamp(10), 0, "s0-p0");
        space.schedule(2, Timestamp(10), 1, "s2-p1-later");
        space.schedule(1, Timestamp(20), 0, "future");
        let slice = space.pop_slice().expect("events at t=10");
        assert_eq!(slice.time, Timestamp(10));
        assert_eq!(slice.width(), 4);
        let shape: Vec<(usize, Vec<&str>)> = slice
            .shards
            .iter()
            .map(|(i, g)| (*i, g.iter().map(|(_, p)| *p).collect()))
            .collect();
        assert_eq!(
            shape,
            vec![
                (0, vec!["s0-p0", "s0-p3"]),
                (2, vec!["s2-p1", "s2-p1-later"]),
            ]
        );
        assert!(slice.cross.is_empty());
        // Next slice is the future event on shard 1.
        let next = space.pop_slice().expect("t=20 pending");
        assert_eq!(next.time, Timestamp(20));
        assert_eq!(next.width(), 1);
        assert!(space.pop_slice().is_none());
    }

    #[test]
    fn boundary_rule_matches_solo_runner() {
        // At time == end only classes <= boundary admit; below end all do.
        let mut space: ShardedEventQueue<&'static str> = ShardedEventQueue::new(2);
        space.schedule(0, Timestamp(5), 4, "early-any-prio");
        space.schedule(0, Timestamp(10), 1, "at-end-radio");
        space.schedule(0, Timestamp(10), 3, "at-end-node");
        space.schedule(1, Timestamp(10), 0, "at-end-tick");
        let first = space
            .pop_slice_until(Timestamp(10), 1)
            .expect("t=5 admits all");
        assert_eq!(first.time, Timestamp(5));
        assert_eq!(first.width(), 1);
        let second = space
            .pop_slice_until(Timestamp(10), 1)
            .expect("boundary classes admit at end");
        assert_eq!(second.time, Timestamp(10));
        let names: Vec<&str> = second
            .shards
            .iter()
            .flat_map(|(_, g)| g.iter().map(|(_, p)| *p))
            .collect();
        assert_eq!(names, ["at-end-radio", "at-end-tick"]);
        // The p3 event stays pending beyond the boundary.
        assert!(space.pop_slice_until(Timestamp(10), 1).is_none());
        assert_eq!(space.len(), 1);
    }

    #[test]
    fn cross_lane_is_separate_and_counted() {
        let mut space: ShardedEventQueue<&'static str> = ShardedEventQueue::new(2);
        space.schedule(0, Timestamp(10), 3, "local");
        space.schedule_cross(Timestamp(10), 0, "rollup");
        let slice = space.pop_slice().expect("slice at t=10");
        assert_eq!(slice.width(), 2);
        assert_eq!(slice.cross.len(), 1);
        assert_eq!(slice.cross.first().map(|(_, p)| *p), Some("rollup"));
        assert_eq!(space.cross_dispatched(), 1);
        assert_eq!(space.dispatched_by_shard(), &[1, 0]);
        assert_eq!(space.slices(), 1);
        assert_eq!(space.slice_width().count(), 1);
    }

    #[test]
    fn publish_emits_pinned_names() {
        let mut space: ShardedEventQueue<u8> = ShardedEventQueue::new(2);
        space.schedule(0, Timestamp(1), 0, 1);
        space.schedule_cross(Timestamp(1), 0, 2);
        let _ = space.pop_slice();
        let mut snap = Snapshot::new(Timestamp(1));
        space.publish(&mut snap);
        assert_eq!(snap.value("sim.shard0.dispatched"), Some(1));
        assert_eq!(snap.value("sim.shard1.dispatched"), Some(0));
        assert_eq!(snap.value("sim.cross_shard_events"), Some(1));
        assert_eq!(snap.value("sim.slices"), Some(1));
        assert_eq!(snap.value("sim.slice_width.count"), Some(1));
        assert_eq!(snap.value("sim.space.len"), Some(0));
    }

    #[test]
    fn drain_shards_round_trips_without_instrumentation() {
        let mut space: ShardedEventQueue<&'static str> = ShardedEventQueue::new(2);
        space.schedule(1, Timestamp(4), 0, "x");
        space.schedule(1, Timestamp(2), 0, "y");
        space.schedule_cross(Timestamp(3), 0, "c");
        let groups = space.drain_shards();
        let flat: Vec<(usize, Vec<&str>)> = groups
            .iter()
            .map(|(i, g)| (*i, g.iter().map(|(_, p)| *p).collect()))
            .collect();
        assert_eq!(flat, vec![(0, vec![]), (1, vec!["y", "x"])]);
        assert_eq!(space.drain_cross().len(), 1);
        assert!(space.is_empty());
        assert_eq!(space.slices(), 0, "maintenance drains record no slices");
    }

    #[test]
    fn shard_of_wraps_and_is_stable() {
        let space: ShardedEventQueue<u8> = ShardedEventQueue::new(4);
        let s = space.shard_of("vejle");
        assert!(s < 4);
        assert_eq!(s, space.shard_of("vejle"), "replay-stable routing");
        assert_eq!(s, (fnv1a_64("vejle") % 4) as usize);
    }
}
