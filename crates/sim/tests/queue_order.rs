//! Property tests for [`EventQueue`] ordering.
//!
//! The queue's contract is what makes the whole simulation replay-stable:
//! same-timestamp events dequeue in `(priority, seq)` order regardless of
//! how insertions were interleaved, and any interleaved insert/pop sequence
//! replays identically when repeated — the dequeue order is a pure function
//! of the schedule calls, never of heap internals.

use ctt_core::time::Timestamp;
use ctt_sim::{EventKey, EventQueue};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    /// Same-instant events come out ordered by (priority, seq) no matter
    /// the insertion order of priorities.
    #[test]
    fn same_timestamp_dequeues_in_priority_then_seq(prios in vec(0u8..4, 1..64)) {
        let mut q = EventQueue::new();
        for (i, &p) in prios.iter().enumerate() {
            q.schedule(Timestamp(1000), p, i);
        }
        let mut out: Vec<(EventKey, usize)> = Vec::new();
        while let Some(ev) = q.pop() {
            out.push(ev);
        }
        prop_assert_eq!(out.len(), prios.len());
        // Expected order: stable sort of the insertion indices by priority
        // (stability is exactly the seq tie-break).
        let mut expect: Vec<usize> = (0..prios.len()).collect();
        expect.sort_by_key(|&i| prios[i]);
        let got: Vec<usize> = out.iter().map(|&(_, idx)| idx).collect();
        prop_assert_eq!(got, expect);
        // And the keys themselves are strictly ascending (all unique).
        for w in out.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "{:?} !< {:?}", w[0].0, w[1].0);
        }
    }

    /// An arbitrary interleaving of schedules and pops replays identically:
    /// running the same op sequence twice yields the same event stream.
    #[test]
    fn interleaved_insert_pop_replays_identically(
        ops in vec((0i64..50, 0u8..4, any::<bool>()), 1..200),
    ) {
        let run = |ops: &[(i64, u8, bool)]| {
            let mut q = EventQueue::new();
            let mut popped: Vec<(EventKey, usize)> = Vec::new();
            for (i, &(t, p, pop_after)) in ops.iter().enumerate() {
                q.schedule(Timestamp(t), p, i);
                if pop_after {
                    if let Some(ev) = q.pop() {
                        popped.push(ev);
                    }
                }
            }
            while let Some(ev) = q.pop() {
                popped.push(ev);
            }
            popped
        };
        let a = run(&ops);
        let b = run(&ops);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), ops.len(), "every scheduled event dequeues once");
        // Each pop yields the minimum key among events scheduled and not
        // yet popped at that point — verify against a naive model.
        let mut model: Vec<(EventKey, usize)> = Vec::new();
        let mut replayed: Vec<(EventKey, usize)> = Vec::new();
        for (i, &(t, p, pop_after)) in ops.iter().enumerate() {
            model.push((
                EventKey { time: Timestamp(t), priority: p, seq: i as u64 },
                i,
            ));
            if pop_after && !model.is_empty() {
                model.sort();
                replayed.push(model.remove(0));
            }
        }
        model.sort();
        replayed.extend(model);
        prop_assert_eq!(a, replayed);
    }
}
