//! Model equivalence for [`ShardedEventQueue`]: slice dispatch over N
//! shards must be a pure regrouping of N independent [`EventQueue`]
//! replays — same per-shard event streams, slice times strictly
//! increasing, groups in ascending shard index, cross lane equal to its
//! own solo-queue replay. This is the property that lets a driver run
//! same-slice shard groups in parallel and still be byte-identical to
//! sequential dispatch.

use ctt_core::time::Timestamp;
use ctt_sim::{fnv1a_64, EventKey, EventQueue, ShardedEventQueue};
use proptest::collection::vec;
use proptest::prelude::*;

/// Reference FNV-1a 64 vectors (RFC draft test set). `ShardedTsdb` hashes
/// series keys with the same constants, so one routing discipline shards
/// both the event space and the storage tier.
#[test]
fn fnv1a_reference_vectors() {
    assert_eq!(fnv1a_64(""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a_64("a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a_64("foobar"), 0x8594_4171_f739_67e8);
}

/// One scheduling op: owning entity, fire time, priority class, and a
/// lane selector (0 routes to the cross lane, anything else shard-local).
type Op = (u8, i64, u8, u8);

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    vec((0u8..12, 0i64..40, 0u8..5, 0u8..10), 1..200)
}

/// Schedule `ops` into a fresh space and per-shard model queues.
fn build(
    ops: &[Op],
    shards: usize,
) -> (
    ShardedEventQueue<usize>,
    Vec<EventQueue<usize>>,
    EventQueue<usize>,
) {
    let mut space = ShardedEventQueue::new(shards);
    let mut models: Vec<EventQueue<usize>> = (0..shards).map(|_| EventQueue::new()).collect();
    let mut cross_model = EventQueue::new();
    for (i, &(entity, t, p, lane)) in ops.iter().enumerate() {
        let time = Timestamp(t);
        if lane == 0 {
            space.schedule_cross(time, p, i);
            cross_model.schedule(time, p, i);
        } else {
            let shard = space.shard_of(&format!("node{entity}"));
            space.schedule(shard, time, p, i);
            models[shard].schedule(time, p, i);
        }
    }
    (space, models, cross_model)
}

fn pop_all(q: &mut EventQueue<usize>) -> Vec<(EventKey, usize)> {
    let mut out = Vec::new();
    while let Some(ev) = q.pop() {
        out.push(ev);
    }
    out
}

proptest! {
    /// Full drain through `pop_slice`: concatenating each shard's groups
    /// across slices replays that shard's solo queue exactly; slice times
    /// strictly increase; groups ascend by shard index and are non-empty;
    /// the cross lane replays its own solo queue.
    #[test]
    fn slice_dispatch_equals_per_shard_replay(
        ops in ops_strategy(),
        shards in prop_oneof![Just(1usize), Just(2usize), Just(8usize)],
    ) {
        let (mut space, mut models, mut cross_model) = build(&ops, shards);
        let mut per_shard: Vec<Vec<(EventKey, usize)>> = vec![Vec::new(); shards];
        let mut cross_stream: Vec<(EventKey, usize)> = Vec::new();
        let mut last_time: Option<Timestamp> = None;
        let mut total = 0usize;
        while let Some(slice) = space.pop_slice() {
            if let Some(prev) = last_time {
                prop_assert!(slice.time > prev, "slice times must strictly increase");
            }
            last_time = Some(slice.time);
            total += slice.width();
            let mut prev_idx: Option<usize> = None;
            for (idx, group) in slice.shards {
                prop_assert!(!group.is_empty(), "groups are non-empty");
                if let Some(pi) = prev_idx {
                    prop_assert!(idx > pi, "groups ascend by shard index");
                }
                prev_idx = Some(idx);
                for (key, payload) in group {
                    prop_assert_eq!(key.time, slice.time);
                    per_shard[idx].push((key, payload));
                }
            }
            for (key, payload) in slice.cross {
                prop_assert_eq!(key.time, slice.time);
                cross_stream.push((key, payload));
            }
        }
        prop_assert!(space.is_empty());
        prop_assert_eq!(total, ops.len(), "every scheduled event dispatches once");
        for (idx, model) in models.iter_mut().enumerate() {
            prop_assert_eq!(&per_shard[idx], &pop_all(model), "shard {} diverged", idx);
        }
        prop_assert_eq!(&cross_stream, &pop_all(&mut cross_model));
        // Instrumentation agrees with what flowed through.
        let by_shard: u64 = space.dispatched_by_shard().iter().sum();
        prop_assert_eq!(by_shard + space.cross_dispatched(), ops.len() as u64);
        prop_assert_eq!(space.slice_width().count(), space.slices());
    }

    /// Horizon-bounded drain: `pop_slice_until(end, bp)` dispatches
    /// exactly the events the solo boundary rule admits — `time < end`,
    /// or `time == end` with `priority <= bp` — and leaves the rest.
    #[test]
    fn pop_slice_until_matches_boundary_rule(
        ops in ops_strategy(),
        end_t in 0i64..45,
        boundary in 0u8..5,
        shards in prop_oneof![Just(2usize), Just(8usize)],
    ) {
        let end = Timestamp(end_t);
        let admitted = |key: &EventKey| {
            key.time < end || (key.time == end && key.priority <= boundary)
        };
        let (mut space, mut models, mut cross_model) = build(&ops, shards);
        let mut dispatched = 0usize;
        while let Some(slice) = space.pop_slice_until(end, boundary) {
            for (_, group) in &slice.shards {
                for (key, _) in group {
                    prop_assert!(admitted(key), "{key:?} beyond horizon {end:?}/{boundary}");
                }
            }
            for (key, _) in &slice.cross {
                prop_assert!(admitted(key), "{key:?} beyond horizon {end:?}/{boundary}");
            }
            dispatched += slice.width();
        }
        let expect: usize = models
            .iter_mut()
            .chain(std::iter::once(&mut cross_model))
            .flat_map(pop_all)
            .filter(|(key, _)| admitted(key))
            .count();
        prop_assert_eq!(dispatched, expect, "boundary rule admits exactly the model set");
        prop_assert_eq!(space.len(), ops.len() - expect, "the rest stays pending");
    }
}
