//! Bit-level reader/writer used by the Gorilla codec.

/// Append-only bit writer over a byte vector (MSB-first within bytes).
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final byte (0..8; 0 means byte-aligned).
    used: u8,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Total bits written.
    pub fn len_bits(&self) -> usize {
        if self.used == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + usize::from(self.used)
        }
    }

    /// Write a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.used == 0 || self.used == 8 {
            self.bytes.push(0);
            self.used = 0;
        }
        if bit {
            if let Some(last) = self.bytes.last_mut() {
                *last |= 1 << (7 - self.used);
            }
        }
        self.used += 1;
    }

    /// Write the lowest `n` bits of `value`, most significant first.
    /// Fills the final byte's free bits in one OR per byte rather than one
    /// call per bit — this sits under every Gorilla value encode, where a
    /// noisy double emits 50+ significand bits per point.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        let mut left = usize::from(n);
        // Bits above `n` are ignored, matching the bit-at-a-time contract.
        let mut value = if left == 64 {
            value
        } else {
            value & (1u64 << left).wrapping_sub(1)
        };
        while left > 0 {
            if self.used == 0 || self.used == 8 {
                self.bytes.push(0);
                self.used = 0;
            }
            let free = 8 - usize::from(self.used);
            let take = free.min(left);
            let rest = left - take;
            let chunk = (value >> rest) as u8 & ((1u16 << take) - 1) as u8;
            if let Some(last) = self.bytes.last_mut() {
                *last |= chunk << (free - take);
            }
            self.used += take as u8;
            left = rest;
            if rest < 64 {
                value &= (1u64 << rest).wrapping_sub(1);
            }
        }
    }

    /// Finish, returning the underlying bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Byte length so far (including the partial final byte).
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Capture the current write position so a later [`Self::truncate_to`]
    /// can rewind every bit written after this instant. The partial final
    /// byte is saved by value: bits ORed into it after the mark are erased
    /// on rewind, not merely masked.
    pub fn mark(&self) -> BitMark {
        BitMark {
            len: self.bytes.len(),
            used: self.used,
            last: self.bytes.last().copied().unwrap_or(0),
        }
    }

    /// Rewind to a previously captured [`BitMark`], discarding everything
    /// written since. The mark must come from this writer at a position at
    /// or before the current one; a stale longer mark is ignored.
    pub fn truncate_to(&mut self, mark: &BitMark) {
        if mark.len > self.bytes.len() {
            return;
        }
        self.bytes.truncate(mark.len);
        if let Some(last) = self.bytes.last_mut() {
            *last = mark.last;
        }
        self.used = mark.used;
    }
}

/// A saved [`BitWriter`] position: byte length, bits used in the final
/// byte, and the final byte's value at capture time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitMark {
    len: usize,
    used: u8,
    last: u8,
}

/// Bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos_bits: usize,
}

impl<'a> BitReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos_bits: 0 }
    }

    /// Bits remaining.
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.pos_bits
    }

    /// Read one bit; `None` at end of stream.
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = self.bytes.get(self.pos_bits / 8)?;
        let bit = (byte >> (7 - (self.pos_bits % 8))) & 1 == 1;
        self.pos_bits += 1;
        Some(bit)
    }

    /// Read `n` bits into the low bits of a u64. Consumes whole bytes per
    /// step (the mirror of [`BitWriter::write_bits`]), so seal-time and
    /// query-time decodes don't pay a call per bit.
    pub fn read_bits(&mut self, n: u8) -> Option<u64> {
        debug_assert!(n <= 64);
        let mut left = usize::from(n);
        if self.remaining_bits() < left {
            return None;
        }
        let mut v = 0u64;
        while left > 0 {
            let byte = *self.bytes.get(self.pos_bits / 8)?;
            let offset = self.pos_bits % 8;
            let avail = 8 - offset;
            let take = avail.min(left);
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            v = (v << take) | u64::from(chunk);
            self.pos_bits += take;
            left -= take;
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.len_bits(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn multi_bit_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0xDEAD_BEEF, 32);
        w.write_bits(1, 1);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_bits(32), Some(0xDEAD_BEEF));
        assert_eq!(r.read_bits(1), Some(1));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    fn read_past_end_is_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        // The padding bits of the final byte are readable zeros...
        assert_eq!(r.remaining_bits(), 5);
        assert_eq!(r.read_bits(5), Some(0));
        // ...but beyond that, end of stream.
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn zero_bit_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0xFFFF, 0);
        assert_eq!(w.len_bits(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn mark_and_truncate_restore_exact_state() {
        let mut w = BitWriter::new();
        w.write_bits(0b101_1011_0101, 11);
        let mark = w.mark();
        let before = w.clone();
        w.write_bits(0xFFFF_FFFF, 32);
        w.write_bit(true);
        w.truncate_to(&mark);
        assert_eq!(w.len_bits(), before.len_bits());
        assert_eq!(w.len_bytes(), before.len_bytes());
        // Continue writing on both and compare the final streams.
        let mut a = w;
        let mut b = before;
        for wtr in [&mut a, &mut b] {
            wtr.write_bits(0b10, 2);
            wtr.write_bits(0xDEAD, 16);
        }
        assert_eq!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn truncate_at_byte_boundary_and_empty() {
        // Mark at an exact byte boundary: `used == 8` on the live writer.
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        let mark = w.mark();
        w.write_bits(0xCD, 8);
        w.truncate_to(&mark);
        assert_eq!(w.len_bits(), 8);
        w.write_bits(0xEF, 8);
        assert_eq!(w.into_bytes(), vec![0xAB, 0xEF]);
        // Mark on an empty writer rewinds to empty.
        let mut w = BitWriter::new();
        let mark = w.mark();
        w.write_bits(0x1234, 16);
        w.truncate_to(&mark);
        assert_eq!(w.len_bits(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn len_bytes_tracks_partial() {
        let mut w = BitWriter::new();
        assert_eq!(w.len_bytes(), 0);
        w.write_bit(true);
        assert_eq!(w.len_bytes(), 1);
        w.write_bits(0, 7);
        assert_eq!(w.len_bytes(), 1);
        w.write_bit(false);
        assert_eq!(w.len_bytes(), 2);
    }
}
