//! Bit-level reader/writer used by the Gorilla codec.

/// Append-only bit writer over a byte vector (MSB-first within bytes).
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final byte (0..8; 0 means byte-aligned).
    used: u8,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Total bits written.
    pub fn len_bits(&self) -> usize {
        if self.used == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + usize::from(self.used)
        }
    }

    /// Write a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.used == 0 || self.used == 8 {
            self.bytes.push(0);
            self.used = 0;
        }
        if bit {
            if let Some(last) = self.bytes.last_mut() {
                *last |= 1 << (7 - self.used);
            }
        }
        self.used += 1;
    }

    /// Write the lowest `n` bits of `value`, most significant first.
    pub fn write_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Finish, returning the underlying bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Byte length so far (including the partial final byte).
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }
}

/// Bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos_bits: usize,
}

impl<'a> BitReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos_bits: 0 }
    }

    /// Bits remaining.
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.pos_bits
    }

    /// Read one bit; `None` at end of stream.
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = self.bytes.get(self.pos_bits / 8)?;
        let bit = (byte >> (7 - (self.pos_bits % 8))) & 1 == 1;
        self.pos_bits += 1;
        Some(bit)
    }

    /// Read `n` bits into the low bits of a u64.
    pub fn read_bits(&mut self, n: u8) -> Option<u64> {
        debug_assert!(n <= 64);
        if self.remaining_bits() < usize::from(n) {
            return None;
        }
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.len_bits(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn multi_bit_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0xDEAD_BEEF, 32);
        w.write_bits(1, 1);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_bits(32), Some(0xDEAD_BEEF));
        assert_eq!(r.read_bits(1), Some(1));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    fn read_past_end_is_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        // The padding bits of the final byte are readable zeros...
        assert_eq!(r.remaining_bits(), 5);
        assert_eq!(r.read_bits(5), Some(0));
        // ...but beyond that, end of stream.
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn zero_bit_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0xFFFF, 0);
        assert_eq!(w.len_bits(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn len_bytes_tracks_partial() {
        let mut w = BitWriter::new();
        assert_eq!(w.len_bytes(), 0);
        w.write_bit(true);
        assert_eq!(w.len_bytes(), 1);
        w.write_bits(0, 7);
        assert_eq!(w.len_bytes(), 1);
        w.write_bit(false);
        assert_eq!(w.len_bytes(), 2);
    }
}
