//! Seal-aware query cache with deterministic, epoch-based invalidation.
//!
//! Dashboard traffic is heavily repetitive — the same city-overview and
//! drilldown queries fire over and over while ingest trickles in. This
//! cache serves repeats without touching shard locks, and invalidates
//! *deterministically*: every shard carries a monotonically increasing
//! **epoch counter** bumped by any mutation (`put`, `put_batch`,
//! `seal_all`, `evict_before`, `flip_chunk_bit`). A cached entry records
//! the epochs it was computed at and is served only while they still
//! match. No wall clock is involved anywhere (lint R5: replay-safe), and
//! recency for eviction is a logical tick counter.
//!
//! Two levels, because invalidation granularity is the whole point on a
//! write-heavy system:
//!
//! 1. **Result level** — the finalized `Vec<QueryResult>` keyed by the
//!    canonical query signature, valid only while *every* shard epoch
//!    matches. One put anywhere invalidates it.
//! 2. **Per-shard collection level** — each shard's phase-1
//!    [`GroupCollection`]s keyed by `(signature, shard)`, valid while
//!    *that shard's* epoch matches. A put into shard 2 forces re-collection
//!    of shard 2 only; shards 0, 1 and 3 are served from cache and merged.
//!    This is what makes an N-shard store under sustained ingest ~N×
//!    cheaper per query than a 1-shard store, even on a single core.
//!
//! Lock discipline (lint R6): the internal mutexes are leaves — no shard
//! lock is ever acquired while one is held.

use crate::model::{TagFilter, TagSet};
use crate::query::{GroupCollection, Query, QueryResult};
use ctt_obs::{Counter, Registry};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default maximum entries per cache level.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Canonical string form of a query, used as the cache key. Filters are a
/// `BTreeMap`, so iteration (and therefore the signature) is deterministic
/// for equal queries regardless of construction order.
pub fn query_signature(q: &Query) -> String {
    let mut s = String::with_capacity(64);
    let _ = write!(s, "{}|{}|{}|", q.metric, q.start.0, q.end.0);
    for (k, f) in &q.filters {
        match f {
            TagFilter::Equals(v) => {
                let _ = write!(s, "{k}={v},");
            }
            TagFilter::Wildcard => {
                let _ = write!(s, "{k}=*,");
            }
            TagFilter::OneOf(vs) => {
                let _ = write!(s, "{k}={},", vs.join("|"));
            }
        }
    }
    let _ = write!(s, "|agg={}", q.aggregator);
    if let Some(ds) = q.downsample {
        let _ = write!(
            s,
            "|ds={}s-{}-{:?}",
            ds.interval.as_seconds(),
            ds.aggregator,
            ds.fill
        );
    }
    if q.rate {
        s.push_str("|rate");
    }
    s
}

#[derive(Debug)]
struct ResultEntry {
    /// Every shard's epoch at compute time; valid only on full match.
    epochs: Vec<u64>,
    results: Vec<QueryResult>,
    tick: u64,
}

#[derive(Debug)]
struct CollectionEntry {
    /// The owning shard's epoch at collect time.
    epoch: u64,
    groups: BTreeMap<TagSet, GroupCollection>,
    tick: u64,
}

/// Counters exported as `tsdb.cache.*` once attached to a registry.
#[derive(Debug, Default)]
struct CacheObs {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

/// Aggregate cache statistics (reads the counters, not the maps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Result- or collection-level hits served.
    pub hits: u64,
    /// Lookups that missed (absent or epoch-stale).
    pub misses: u64,
    /// Entries evicted to respect capacity.
    pub evictions: u64,
}

/// The two-level seal-aware cache. Interior-mutable: lookups and inserts
/// take `&self`, so the sharded store can consult it under concurrent
/// readers.
#[derive(Debug)]
pub struct QueryCache {
    results: Mutex<BTreeMap<String, ResultEntry>>,
    collections: Mutex<BTreeMap<(String, usize), CollectionEntry>>,
    /// Logical recency clock (no wall time): bumped per cache operation.
    tick: Mutex<u64>,
    capacity: usize,
    obs: Mutex<CacheObs>,
}

impl Default for QueryCache {
    fn default() -> Self {
        QueryCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl QueryCache {
    /// New cache holding at most `capacity` entries per level.
    pub fn with_capacity(capacity: usize) -> Self {
        QueryCache {
            results: Mutex::new(BTreeMap::new()),
            collections: Mutex::new(BTreeMap::new()),
            tick: Mutex::new(0),
            capacity: capacity.max(1),
            obs: Mutex::new(CacheObs::default()),
        }
    }

    /// Register `tsdb.cache.{hits,misses,evictions}` into `registry`.
    /// Counts accumulated before attachment are discarded.
    pub fn attach_registry(&self, registry: &Registry) {
        *self.obs.lock() = CacheObs {
            hits: registry.counter("tsdb.cache.hits"),
            misses: registry.counter("tsdb.cache.misses"),
            evictions: registry.counter("tsdb.cache.evictions"),
        };
    }

    fn next_tick(&self) -> u64 {
        let mut t = self.tick.lock();
        *t = t.wrapping_add(1);
        *t
    }

    fn hit(&self) {
        self.obs.lock().hits.inc();
    }

    fn miss(&self) {
        self.obs.lock().misses.inc();
    }

    /// Finalized results for `sig`, if cached at exactly these epochs.
    pub(crate) fn get_results(&self, sig: &str, epochs: &[u64]) -> Option<Vec<QueryResult>> {
        let tick = self.next_tick();
        let mut map = self.results.lock();
        match map.get_mut(sig) {
            Some(entry) if entry.epochs == epochs => {
                entry.tick = tick;
                let out = entry.results.clone();
                drop(map);
                self.hit();
                Some(out)
            }
            _ => {
                drop(map);
                self.miss();
                None
            }
        }
    }

    /// Cache finalized results for `sig` computed at `epochs`.
    pub(crate) fn put_results(&self, sig: String, epochs: Vec<u64>, results: Vec<QueryResult>) {
        let tick = self.next_tick();
        let mut map = self.results.lock();
        map.insert(
            sig,
            ResultEntry {
                epochs,
                results,
                tick,
            },
        );
        let evicted = evict_lru(&mut map, self.capacity, |e| e.tick);
        drop(map);
        if evicted > 0 {
            self.obs.lock().evictions.add(evicted);
        }
    }

    /// One shard's phase-1 collections for `sig`, if cached at `epoch`.
    pub(crate) fn get_collection(
        &self,
        sig: &str,
        shard: usize,
        epoch: u64,
    ) -> Option<BTreeMap<TagSet, GroupCollection>> {
        let tick = self.next_tick();
        let mut map = self.collections.lock();
        match map.get_mut(&(sig.to_string(), shard)) {
            Some(entry) if entry.epoch == epoch => {
                entry.tick = tick;
                let out = entry.groups.clone();
                drop(map);
                self.hit();
                Some(out)
            }
            _ => {
                drop(map);
                self.miss();
                None
            }
        }
    }

    /// Cache one shard's phase-1 collections computed at `epoch`.
    pub(crate) fn put_collection(
        &self,
        sig: &str,
        shard: usize,
        epoch: u64,
        groups: BTreeMap<TagSet, GroupCollection>,
    ) {
        let tick = self.next_tick();
        let mut map = self.collections.lock();
        map.insert(
            (sig.to_string(), shard),
            CollectionEntry {
                epoch,
                groups,
                tick,
            },
        );
        let evicted = evict_lru(&mut map, self.capacity, |e| e.tick);
        drop(map);
        if evicted > 0 {
            self.obs.lock().evictions.add(evicted);
        }
    }

    /// Drop every entry (used by tests and explicit resets).
    pub fn clear(&self) {
        self.results.lock().clear();
        self.collections.lock().clear();
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        let obs = self.obs.lock();
        CacheStats {
            hits: obs.hits.get(),
            misses: obs.misses.get(),
            evictions: obs.evictions.get(),
        }
    }

    /// Entries currently held (both levels).
    pub fn len(&self) -> usize {
        self.results.lock().len() + self.collections.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Evict least-recently-used entries until the map fits `capacity`.
/// Deterministic: recency is the logical tick, ties impossible (ticks are
/// unique). Returns how many entries were evicted.
fn evict_lru<K: Ord + Clone, V>(
    map: &mut BTreeMap<K, V>,
    capacity: usize,
    tick_of: impl Fn(&V) -> u64,
) -> u64 {
    let mut evicted = 0u64;
    while map.len() > capacity {
        let oldest = map
            .iter()
            .min_by_key(|(_, v)| tick_of(v))
            .map(|(k, _)| k.clone());
        match oldest {
            Some(k) => {
                map.remove(&k);
                evicted += 1;
            }
            None => break,
        }
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use ctt_core::time::{Span, Timestamp};

    #[test]
    fn signature_is_canonical_and_distinguishes_queries() {
        let a = Query::range("co2", Timestamp(0), Timestamp(3600)).with_tag("city", "trd");
        let b = Query::range("co2", Timestamp(0), Timestamp(3600)).with_tag("city", "trd");
        assert_eq!(query_signature(&a), query_signature(&b));
        for other in [
            Query::range("co2", Timestamp(0), Timestamp(7200)).with_tag("city", "trd"),
            Query::range("no2", Timestamp(0), Timestamp(3600)).with_tag("city", "trd"),
            Query::range("co2", Timestamp(0), Timestamp(3600)).with_tag("city", "vejle"),
            Query::range("co2", Timestamp(0), Timestamp(3600))
                .with_tag("city", "trd")
                .as_rate(),
            Query::range("co2", Timestamp(0), Timestamp(3600))
                .with_tag("city", "trd")
                .downsample(crate::query::Downsample {
                    interval: Span::hours(1),
                    aggregator: crate::query::Aggregator::Avg,
                    fill: crate::query::FillPolicy::None,
                }),
            Query::range("co2", Timestamp(0), Timestamp(3600)).group_by("city"),
        ] {
            assert_ne!(
                query_signature(&a),
                query_signature(&other),
                "collision: {other:?}"
            );
        }
    }

    #[test]
    fn results_served_only_at_matching_epochs() {
        let cache = QueryCache::default();
        let sig = "s".to_string();
        cache.put_results(sig.clone(), vec![1, 2], Vec::new());
        assert!(cache.get_results(&sig, &[1, 2]).is_some());
        assert!(
            cache.get_results(&sig, &[1, 3]).is_none(),
            "a bumped epoch must invalidate"
        );
        assert!(cache.get_results("other", &[1, 2]).is_none());
        let st = cache.stats();
        assert_eq!((st.hits, st.misses), (1, 2));
    }

    #[test]
    fn collections_invalidate_per_shard() {
        let cache = QueryCache::default();
        cache.put_collection("s", 0, 5, BTreeMap::new());
        cache.put_collection("s", 1, 9, BTreeMap::new());
        // Shard 1 mutated (epoch 9 → 10): shard 0 still serves.
        assert!(cache.get_collection("s", 0, 5).is_some());
        assert!(cache.get_collection("s", 1, 10).is_none());
    }

    #[test]
    fn lru_eviction_by_logical_tick() {
        let cache = QueryCache::with_capacity(2);
        cache.put_results("a".into(), vec![0], Vec::new());
        cache.put_results("b".into(), vec![0], Vec::new());
        let _ = cache.get_results("a", &[0]); // refresh "a"
        cache.put_results("c".into(), vec![0], Vec::new()); // evicts "b"
        assert!(cache.get_results("a", &[0]).is_some());
        assert!(cache.get_results("b", &[0]).is_none());
        assert!(cache.get_results("c", &[0]).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }
}
