//! Typed errors for the storage and query layers.
//!
//! The hot path is panic-free (enforced by `ctt-lint` rule R1): corrupt
//! chunks, unknown series, and malformed queries surface as [`TsdbError`]
//! values instead of unwinding the ingest thread.

use crate::store::SeriesId;
use std::fmt;

/// Failures surfaced by chunk decoding, series reads, and query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsdbError {
    /// A Gorilla bitstream ended before all advertised points were decoded.
    TruncatedChunk {
        /// Points successfully decoded before the stream ran out.
        decoded: u32,
        /// Points the chunk header advertised.
        expected: u32,
    },
    /// A Gorilla value header encoded an impossible bit window
    /// (`leading + significant > 64`).
    InvalidValueWindow {
        /// Leading-zero count from the 5-bit header field.
        leading: u8,
        /// Significant-bit count from the 6-bit header field.
        significant: u8,
    },
    /// A series id that does not exist in this store.
    UnknownSeries(SeriesId),
    /// A query referenced a metric with no series at all.
    NoSuchMetric(String),
}

impl fmt::Display for TsdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsdbError::TruncatedChunk { decoded, expected } => write!(
                f,
                "gorilla chunk truncated: decoded {decoded} of {expected} points"
            ),
            TsdbError::InvalidValueWindow {
                leading,
                significant,
            } => write!(
                f,
                "gorilla value window invalid: leading {leading} + significant {significant} > 64"
            ),
            TsdbError::UnknownSeries(id) => write!(f, "unknown series id {}", id.0),
            TsdbError::NoSuchMetric(m) => write!(f, "no series recorded for metric {m:?}"),
        }
    }
}

impl std::error::Error for TsdbError {}
