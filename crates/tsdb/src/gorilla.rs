//! Gorilla compression for time-series chunks (Facebook's in-memory TSDB,
//! VLDB 2015) — delta-of-delta timestamps and XOR-encoded float values.
//!
//! Sensor uplinks arrive on a nearly regular cadence (5 minutes) with
//! slowly-varying values, which is exactly the regime Gorilla exploits: a
//! stable cadence makes almost every timestamp a single `0` bit, and small
//! value changes share exponent/mantissa prefixes so XORs have long
//! zero runs.
//!
//! Encoding details (as in the paper, with 64-bit timestamps):
//! * first timestamp: 64 bits raw; first delta: 27-bit signed
//! * delta-of-delta: `0` | `10`+7 bit | `110`+9 bit | `1110`+12 bit |
//!   `1111`+32 bit (signed, zigzag-free, offset encoded)
//! * first value: 64 bits raw
//! * value XOR: `0` (same) | `10` (within previous leading/trailing window)
//!   | `11` + 5-bit leading + 6-bit length + meaningful bits

use crate::bits::{BitMark, BitReader, BitWriter};
use crate::error::TsdbError;
use ctt_core::time::Timestamp;

/// Streaming Gorilla encoder for one chunk.
#[derive(Debug, Clone)]
pub struct GorillaEncoder {
    w: BitWriter,
    count: u32,
    prev_ts: i64,
    prev_delta: i64,
    prev_value_bits: u64,
    prev_leading: u8,
    prev_trailing: u8,
}

impl Default for GorillaEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl GorillaEncoder {
    /// Fresh encoder.
    pub fn new() -> Self {
        GorillaEncoder {
            w: BitWriter::new(),
            count: 0,
            prev_ts: 0,
            prev_delta: 0,
            prev_value_bits: 0,
            prev_leading: u8::MAX, // "no window yet"
            prev_trailing: 0,
        }
    }

    /// Number of points appended.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Compressed size so far, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.w.len_bytes()
    }

    /// Append one point. Timestamps must be non-decreasing.
    #[inline]
    pub fn append(&mut self, t: Timestamp, value: f64) {
        let ts = t.as_seconds();
        let vbits = value.to_bits();
        if self.count == 0 {
            self.w.write_bits(ts as u64, 64);
            self.w.write_bits(vbits, 64);
        } else {
            assert!(ts >= self.prev_ts, "out-of-order append to chunk");
            let delta = ts - self.prev_ts;
            if self.count == 1 {
                // First delta: 27-bit offset-encoded (supports up to ~2 years).
                debug_assert!(delta < (1 << 26));
                self.w.write_bits((delta + (1 << 26)) as u64, 27);
            } else {
                let dod = delta - self.prev_delta;
                match dod {
                    0 => self.w.write_bit(false),
                    -63..=64 => {
                        self.w.write_bits(0b10, 2);
                        self.w.write_bits((dod + 63) as u64, 7);
                    }
                    -255..=256 => {
                        self.w.write_bits(0b110, 3);
                        self.w.write_bits((dod + 255) as u64, 9);
                    }
                    -2047..=2048 => {
                        self.w.write_bits(0b1110, 4);
                        self.w.write_bits((dod + 2047) as u64, 12);
                    }
                    _ => {
                        self.w.write_bits(0b1111, 4);
                        self.w.write_bits((dod as i32) as u32 as u64, 32);
                    }
                }
            }
            self.prev_delta = delta;
            // Value XOR encoding.
            let xor = vbits ^ self.prev_value_bits;
            if xor == 0 {
                self.w.write_bit(false);
            } else {
                let leading = (xor.leading_zeros() as u8).min(31);
                let trailing = xor.trailing_zeros() as u8;
                if self.prev_leading != u8::MAX
                    && leading >= self.prev_leading
                    && trailing >= self.prev_trailing
                {
                    // Fits the previous window: control bits `10`, then the
                    // significand — fused into one write when they fit a
                    // u64 together (xor >> prev_trailing has at most `sig`
                    // significant bits here, so the OR never collides).
                    let sig = 64 - self.prev_leading - self.prev_trailing;
                    if sig <= 62 {
                        self.w
                            .write_bits((0b10 << sig) | (xor >> self.prev_trailing), sig + 2);
                    } else {
                        self.w.write_bits(0b10, 2);
                        self.w.write_bits(xor >> self.prev_trailing, sig);
                    }
                } else {
                    // New window: control bits `11`, the 5-bit leading
                    // count, and the 6-bit `sig-1` (sig is 1..=64) — one
                    // 13-bit header — then the significand.
                    let sig = 64 - leading - trailing;
                    let header = (0b11 << 11) | (u64::from(leading) << 6) | u64::from(sig - 1);
                    self.w.write_bits(header, 13);
                    self.w.write_bits(xor >> trailing, sig);
                    self.prev_leading = leading;
                    self.prev_trailing = trailing;
                }
            }
        }
        self.prev_ts = ts;
        self.prev_value_bits = vbits;
        self.count += 1;
    }

    /// Finish, producing the sealed chunk bytes (header + bitstream).
    pub fn finish(self) -> CompressedChunk {
        CompressedChunk {
            count: self.count,
            data: self.w.into_bytes(),
        }
    }

    /// Capture the full encoder state — bitstream position plus the
    /// delta/XOR prediction context — so a later [`Self::restore`] rewinds
    /// to exactly this instant. This is what lets a streaming appender
    /// re-encode the final point (last-write-wins on duplicate timestamps)
    /// or cut a chunk at a bucket boundary without re-walking the stream.
    pub fn checkpoint(&self) -> EncCheckpoint {
        EncCheckpoint {
            mark: self.w.mark(),
            count: self.count,
            prev_ts: self.prev_ts,
            prev_delta: self.prev_delta,
            prev_value_bits: self.prev_value_bits,
            prev_leading: self.prev_leading,
            prev_trailing: self.prev_trailing,
        }
    }

    /// Rewind to a previously captured checkpoint, discarding every point
    /// appended since. The checkpoint must come from this encoder.
    pub fn restore(&mut self, ck: &EncCheckpoint) {
        self.w.truncate_to(&ck.mark);
        self.count = ck.count;
        self.prev_ts = ck.prev_ts;
        self.prev_delta = ck.prev_delta;
        self.prev_value_bits = ck.prev_value_bits;
        self.prev_leading = ck.prev_leading;
        self.prev_trailing = ck.prev_trailing;
    }
}

/// A saved [`GorillaEncoder`] position: the bitstream mark plus the
/// prediction context (previous timestamp, delta, value bits, XOR window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncCheckpoint {
    mark: BitMark,
    count: u32,
    prev_ts: i64,
    prev_delta: i64,
    prev_value_bits: u64,
    prev_leading: u8,
    prev_trailing: u8,
}

/// A sealed compressed chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedChunk {
    count: u32,
    data: Vec<u8>,
}

impl CompressedChunk {
    /// Number of points in the chunk.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Compressed byte size.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Fault injection: flip one bit of the compressed bitstream (index
    /// taken modulo the stream length). Returns `false` when the chunk has
    /// no data bytes to corrupt.
    pub fn flip_bit(&mut self, bit: u64) -> bool {
        if self.data.is_empty() {
            return false;
        }
        let b = bit % (self.data.len() as u64 * 8);
        if let Some(byte) = self.data.get_mut((b / 8) as usize) {
            *byte ^= 1 << (b % 8);
            true
        } else {
            false
        }
    }

    /// Decode all points. A truncated or corrupt bitstream yields a typed
    /// error rather than a panic — chunks can arrive from disk or the wire.
    pub fn decode(&self) -> Result<Vec<(Timestamp, f64)>, TsdbError> {
        let mut out = Vec::with_capacity(self.count as usize);
        if self.count == 0 {
            return Ok(out);
        }
        let truncated = |decoded: usize| TsdbError::TruncatedChunk {
            decoded: decoded as u32,
            expected: self.count,
        };
        let mut r = BitReader::new(&self.data);
        let mut ts = r.read_bits(64).ok_or_else(|| truncated(0))? as i64;
        let mut vbits = r.read_bits(64).ok_or_else(|| truncated(0))?;
        out.push((Timestamp(ts), f64::from_bits(vbits)));
        let mut delta: i64 = 0;
        let mut leading: u8 = 0;
        let mut trailing: u8 = 0;
        for i in 1..self.count {
            let short = truncated(i as usize);
            if i == 1 {
                delta = r.read_bits(27).ok_or(short.clone())? as i64 - (1 << 26);
            } else {
                let dod = if !r.read_bit().ok_or(short.clone())? {
                    0
                } else if !r.read_bit().ok_or(short.clone())? {
                    r.read_bits(7).ok_or(short.clone())? as i64 - 63
                } else if !r.read_bit().ok_or(short.clone())? {
                    r.read_bits(9).ok_or(short.clone())? as i64 - 255
                } else if !r.read_bit().ok_or(short.clone())? {
                    r.read_bits(12).ok_or(short.clone())? as i64 - 2047
                } else {
                    i64::from(r.read_bits(32).ok_or(short.clone())? as u32 as i32)
                };
                delta = delta.wrapping_add(dod);
            }
            ts = ts.wrapping_add(delta);
            // Value.
            if r.read_bit().ok_or(short.clone())? {
                if r.read_bit().ok_or(short.clone())? {
                    leading = r.read_bits(5).ok_or(short.clone())? as u8;
                    let sig = r.read_bits(6).ok_or(short.clone())? as u8 + 1;
                    // A corrupt header can claim leading + sig > 64, which
                    // would underflow `trailing` below. Reject it.
                    if leading + sig > 64 {
                        return Err(TsdbError::InvalidValueWindow {
                            leading,
                            significant: sig,
                        });
                    }
                    trailing = 64 - leading - sig;
                    let bits = r.read_bits(sig).ok_or(short.clone())?;
                    vbits ^= bits << trailing;
                } else {
                    let sig = 64 - leading - trailing;
                    let bits = r.read_bits(sig).ok_or(short.clone())?;
                    vbits ^= bits << trailing;
                }
            }
            out.push((Timestamp(ts), f64::from_bits(vbits)));
        }
        Ok(out)
    }

    /// Serialize to bytes (length-prefixed) for export.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.data.len());
        out.extend_from_slice(&self.count.to_be_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Deserialize from [`Self::to_bytes`] output; returns the chunk and the
    /// bytes consumed.
    pub fn from_bytes(bytes: &[u8]) -> Option<(CompressedChunk, usize)> {
        if bytes.len() < 8 {
            return None;
        }
        let count = u32::from_be_bytes(bytes.get(0..4)?.try_into().ok()?);
        let len = u32::from_be_bytes(bytes.get(4..8)?.try_into().ok()?) as usize;
        Some((
            CompressedChunk {
                count,
                data: bytes.get(8..8 + len)?.to_vec(),
            },
            8 + len,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctt_core::time::Span;

    fn roundtrip(points: &[(Timestamp, f64)]) {
        let mut enc = GorillaEncoder::new();
        for &(t, v) in points {
            enc.append(t, v);
        }
        let chunk = enc.finish();
        assert_eq!(chunk.count() as usize, points.len());
        let decoded = chunk.decode().expect("roundtrip chunk decodes");
        assert_eq!(decoded.len(), points.len());
        for (i, (&(t, v), &(dt, dv))) in points.iter().zip(&decoded).enumerate() {
            assert_eq!(t, dt, "timestamp {i}");
            assert!(
                v == dv || (v.is_nan() && dv.is_nan()),
                "value {i}: {v} != {dv}"
            );
        }
    }

    #[test]
    fn empty_chunk() {
        let chunk = GorillaEncoder::new().finish();
        assert_eq!(chunk.count(), 0);
        assert!(chunk.decode().expect("empty chunk decodes").is_empty());
    }

    #[test]
    fn single_point() {
        roundtrip(&[(Timestamp(1_483_228_800), 412.5)]);
    }

    #[test]
    fn two_points() {
        roundtrip(&[(Timestamp(100), 1.0), (Timestamp(400), 2.0)]);
    }

    #[test]
    fn regular_cadence_roundtrip() {
        let start = Timestamp::from_civil(2017, 1, 1, 0, 0, 0);
        let pts: Vec<_> = (0..500)
            .map(|i| {
                (
                    start + Span::minutes(5 * i),
                    400.0 + (i as f64 * 0.1).sin() * 20.0,
                )
            })
            .collect();
        roundtrip(&pts);
    }

    #[test]
    fn irregular_cadence_roundtrip() {
        // Adaptive sampling: cadence switches 5 → 15 → 60 minutes.
        let start = Timestamp::from_civil(2017, 1, 1, 0, 0, 0);
        let mut t = start;
        let mut pts = Vec::new();
        for i in 0..300i64 {
            let step = if i < 100 {
                5
            } else if i < 200 {
                15
            } else {
                60
            };
            t += Span::minutes(step);
            pts.push((t, f64::from(i as i32) * 0.25 - 3.0));
        }
        roundtrip(&pts);
    }

    #[test]
    fn large_time_jumps() {
        roundtrip(&[
            (Timestamp(0), 1.0),
            (Timestamp(5), 2.0),
            (Timestamp(1_000_000), 3.0), // huge delta-of-delta → 32-bit path
            (Timestamp(1_000_005), 4.0),
        ]);
    }

    #[test]
    fn constant_values_compress_to_single_bits() {
        let start = Timestamp(0);
        let mut enc = GorillaEncoder::new();
        for i in 0..1000i64 {
            enc.append(start + Span::seconds(300 * i), 42.0);
        }
        let chunk = enc.finish();
        // 1000 points × 16 B raw = 16 kB; constant series ≈ 2 bits/point.
        assert!(
            chunk.size_bytes() < 450,
            "constant series took {} bytes",
            chunk.size_bytes()
        );
        roundtrip(
            &(0..1000i64)
                .map(|i| (start + Span::seconds(300 * i), 42.0))
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn sensor_like_series_compresses_well() {
        // Realistic CO2 series: regular cadence, smooth value changes.
        let start = Timestamp::from_civil(2017, 3, 1, 0, 0, 0);
        let mut enc = GorillaEncoder::new();
        let n = 2016; // one week at 5 min
        for i in 0..n {
            let v = 410.0 + 25.0 * ((i as f64) * 0.02).sin() + ((i * 7919) % 13) as f64 * 0.1;
            enc.append(start + Span::minutes(5 * i), v);
        }
        let chunk = enc.finish();
        let raw = n as usize * 16;
        let ratio = raw as f64 / chunk.size_bytes() as f64;
        assert!(ratio > 1.8, "compression ratio {ratio:.2} too low");
    }

    #[test]
    fn special_values() {
        roundtrip(&[
            (Timestamp(0), 0.0),
            (Timestamp(10), -0.0),
            (Timestamp(20), f64::INFINITY),
            (Timestamp(30), f64::NEG_INFINITY),
            (Timestamp(40), f64::NAN),
            (Timestamp(50), f64::MIN_POSITIVE),
            (Timestamp(60), f64::MAX),
        ]);
    }

    #[test]
    fn equal_timestamps_allowed() {
        roundtrip(&[
            (Timestamp(5), 1.0),
            (Timestamp(5), 2.0),
            (Timestamp(5), 3.0),
        ]);
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_panics() {
        let mut enc = GorillaEncoder::new();
        enc.append(Timestamp(100), 1.0);
        enc.append(Timestamp(50), 2.0);
    }

    #[test]
    fn checkpoint_restore_yields_identical_bytes() {
        // Rewinding N points and re-appending the same tail must produce a
        // chunk byte-identical to never having rewound — including when the
        // rewind crosses XOR-window renegotiations.
        let pts: Vec<(Timestamp, f64)> = (0..40i64)
            .map(|i| {
                let v = if i % 7 == 0 {
                    f64::NAN
                } else {
                    400.0 + (i as f64) * 1.5
                };
                (Timestamp(i * 300), v)
            })
            .collect();
        let mut straight = GorillaEncoder::new();
        for &(t, v) in &pts {
            straight.append(t, v);
        }
        for cut in [1usize, 13, 25, 39] {
            let mut enc = GorillaEncoder::new();
            for &(t, v) in &pts[..cut] {
                enc.append(t, v);
            }
            let ck = enc.checkpoint();
            // Scribble extra points, then rewind them all.
            for i in 0..5i64 {
                enc.append(Timestamp(pts[cut - 1].0 .0 + 1 + i), 9e9);
            }
            enc.restore(&ck);
            assert_eq!(enc.count() as usize, cut);
            for &(t, v) in &pts[cut..] {
                enc.append(t, v);
            }
            assert_eq!(enc.clone().finish(), straight.clone().finish(), "cut {cut}");
        }
    }

    #[test]
    fn truncated_bitstream_is_an_error_not_a_panic() {
        // Regression: decode() used to .expect() on every read, so a chunk
        // whose bitstream was cut short (disk corruption, partial write)
        // panicked the ingest thread. It must return TruncatedChunk instead.
        let mut enc = GorillaEncoder::new();
        for i in 0..50i64 {
            enc.append(Timestamp(i * 300), 400.0 + i as f64);
        }
        let chunk = enc.finish();
        let full = chunk.to_bytes();
        // Drop trailing payload bytes but keep the 8-byte header intact and
        // patch the length field so from_bytes accepts the short payload.
        for cut in 1..(full.len() - 8).min(24) {
            let mut bytes = full[..full.len() - cut].to_vec();
            let new_len = (bytes.len() - 8) as u32;
            bytes[4..8].copy_from_slice(&new_len.to_be_bytes());
            let (short, _) = CompressedChunk::from_bytes(&bytes).expect("header ok");
            match short.decode() {
                Err(TsdbError::TruncatedChunk { decoded, expected }) => {
                    assert_eq!(expected, 50);
                    assert!(decoded < 50);
                }
                other => panic!("cut {cut}: expected TruncatedChunk, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_value_window_is_an_error_not_a_panic() {
        // Regression: a value header claiming leading + significant > 64
        // underflowed `64 - leading - sig` (u8) and panicked in debug
        // builds. Craft that header by hand: 2 points, second value takes
        // the "new window" path with leading=31, sig=64.
        let mut w = BitWriter::new();
        w.write_bits(0, 64); // first timestamp
        w.write_bits(42.0f64.to_bits(), 64); // first value
        w.write_bits(300 + (1 << 26), 27); // first delta (offset-encoded)
        w.write_bit(true); // value differs
        w.write_bit(true); // new window
        w.write_bits(31, 5); // leading = 31
        w.write_bits(63, 6); // sig - 1 = 63 → sig = 64 → 31 + 64 > 64
        w.write_bits(0, 64);
        let chunk = CompressedChunk {
            count: 2,
            data: w.into_bytes(),
        };
        assert_eq!(
            chunk.decode(),
            Err(TsdbError::InvalidValueWindow {
                leading: 31,
                significant: 64
            })
        );
    }

    #[test]
    fn random_garbage_never_panics() {
        // Any byte soup must decode to Ok or a typed error — never unwind.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let len = (next() % 96) as usize;
            let data: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let chunk = CompressedChunk {
                count: (next() % 64) as u32,
                data,
            };
            let _ = chunk.decode(); // must not panic
            let _ = trial;
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let mut enc = GorillaEncoder::new();
        for i in 0..100i64 {
            enc.append(Timestamp(i * 300), i as f64);
        }
        let chunk = enc.finish();
        let bytes = chunk.to_bytes();
        let (restored, consumed) = CompressedChunk::from_bytes(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(restored, chunk);
        // Truncated input fails cleanly.
        assert!(CompressedChunk::from_bytes(&bytes[..4]).is_none());
        assert!(CompressedChunk::from_bytes(&bytes[..bytes.len() - 1]).is_none());
    }
}
