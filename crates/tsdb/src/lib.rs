//! # ctt-tsdb — OpenTSDB-style time-series database
//!
//! The CTT dashboards "access the data from the OpenTSDB time series
//! database" (§2.4). This crate reproduces that storage layer:
//!
//! * [`model`] — metric + tag data model with OpenTSDB naming rules.
//! * [`bits`] / [`gorilla`] — bit-packed Gorilla chunk compression
//!   (delta-of-delta timestamps, XOR floats).
//! * [`store`] — interned series, chunked storage, retention, stats.
//! * [`shard`] — series-key-hash partitioning across N lock-guarded
//!   shards with batched ingest and merge-on-read queries.
//! * [`query`] — tag filters, group-by, downsampling (`1h-avg`),
//!   cross-series aggregation, rate.
//! * [`text`] — telnet-style `put` import/export and table rendering.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod bits;
pub mod error;
pub mod gorilla;
pub mod model;
pub mod query;
pub mod shard;
pub mod store;
pub mod text;

pub use error::TsdbError;
pub use gorilla::{CompressedChunk, GorillaEncoder};
pub use model::{DataPoint, ModelError, TagFilter, TagSet};
pub use query::{execute, Aggregator, Downsample, FillPolicy, Query, QueryResult};
pub use shard::{ShardedTsdb, DEFAULT_SHARDS};
pub use store::{BitFlipOutcome, IntegrityReport, QuarantineReport, SeriesId, StoreStats, Tsdb};
