//! # ctt-tsdb — OpenTSDB-style time-series database
//!
//! The CTT dashboards "access the data from the OpenTSDB time series
//! database" (§2.4). This crate reproduces that storage layer:
//!
//! * [`model`] — metric + tag data model with OpenTSDB naming rules.
//! * [`bits`] / [`gorilla`] — bit-packed Gorilla chunk compression
//!   (delta-of-delta timestamps, XOR floats).
//! * [`store`] — interned series, chunked storage, a per-series
//!   time-range block index, retention, stats.
//! * [`rollup`] — seal-time materialized rollups (pre-downsampled
//!   per-bucket summaries) serving dashboard queries without decode.
//! * [`shard`] — series-key-hash partitioning across N lock-guarded
//!   shards with batched ingest and merge-on-read queries.
//! * [`query`] — tag filters, group-by, downsampling (`1h-avg`),
//!   cross-series aggregation, rate.
//! * [`cache`] — seal-aware query result cache with deterministic
//!   epoch-based invalidation (no wall clock).
//! * [`text`] — telnet-style `put` import/export and table rendering.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod bits;
pub mod cache;
pub mod error;
pub mod gorilla;
pub mod model;
pub mod query;
pub mod rollup;
pub mod shard;
pub mod store;
pub mod text;

pub use cache::{CacheStats, QueryCache};
pub use error::TsdbError;
pub use gorilla::{CompressedChunk, GorillaEncoder};
pub use model::{DataPoint, ModelError, TagFilter, TagSet};
pub use query::{execute, execute_raw, Aggregator, Downsample, FillPolicy, Query, QueryResult};
pub use rollup::RollupBucket;
pub use shard::{
    series_key_hash, ServePolicy, ShardWriteSession, ShardWriter, ShardedTsdb, DEFAULT_SHARDS,
};
pub use store::{
    BitFlipOutcome, IntegrityReport, QuarantineReport, ScanCounts, SeriesId, StoreStats, Tsdb,
};
