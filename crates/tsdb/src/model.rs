//! Data model: metrics, tags, data points (OpenTSDB-style).
//!
//! A series is identified by a metric name plus a set of tag key/value
//! pairs, e.g. `ctt.air.co2 {city=trondheim, device=70b3...}`. Names are
//! restricted to the OpenTSDB character set so text import/export is
//! unambiguous.

use ctt_core::time::Timestamp;
use std::collections::BTreeMap;
use std::fmt;

/// Validates an OpenTSDB-style name (metric, tag key, tag value):
/// alphanumerics plus `-`, `_`, `.`, `/`.
pub fn is_valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | '/'))
}

/// A sorted tag set. `BTreeMap` so the canonical form is deterministic.
pub type TagSet = BTreeMap<String, String>;

/// Errors constructing points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Invalid metric name.
    BadMetric(String),
    /// Invalid tag key or value.
    BadTag(String, String),
    /// Non-finite value.
    BadValue,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadMetric(m) => write!(f, "invalid metric name {m:?}"),
            ModelError::BadTag(k, v) => write!(f, "invalid tag {k:?}={v:?}"),
            ModelError::BadValue => f.write_str("value must be finite"),
        }
    }
}

impl std::error::Error for ModelError {}

/// One incoming data point.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPoint {
    /// Metric name.
    pub metric: String,
    /// Tags (sorted).
    pub tags: TagSet,
    /// Observation time.
    pub time: Timestamp,
    /// Value (finite).
    pub value: f64,
}

impl DataPoint {
    /// Validated constructor.
    pub fn new(
        metric: impl Into<String>,
        tags: impl IntoIterator<Item = (String, String)>,
        time: Timestamp,
        value: f64,
    ) -> Result<DataPoint, ModelError> {
        let metric = metric.into();
        if !is_valid_name(&metric) {
            return Err(ModelError::BadMetric(metric));
        }
        let mut tagset = TagSet::new();
        for (k, v) in tags {
            if !is_valid_name(&k) || !is_valid_name(&v) {
                return Err(ModelError::BadTag(k, v));
            }
            tagset.insert(k, v);
        }
        if !value.is_finite() {
            return Err(ModelError::BadValue);
        }
        Ok(DataPoint {
            metric,
            tags: tagset,
            time,
            value,
        })
    }

    /// Canonical series key string: `metric{k1=v1,k2=v2}`.
    pub fn series_key(&self) -> String {
        series_key(&self.metric, &self.tags)
    }
}

/// Canonical series key for a metric + tag set.
pub fn series_key(metric: &str, tags: &TagSet) -> String {
    let mut s = String::with_capacity(metric.len() + 16 * tags.len() + 2);
    s.push_str(metric);
    s.push('{');
    for (i, (k, v)) in tags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(k);
        s.push('=');
        s.push_str(v);
    }
    s.push('}');
    s
}

/// A tag predicate in a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TagFilter {
    /// Tag must equal this value.
    Equals(String),
    /// Tag must be present with any value (OpenTSDB `*`) — also the
    /// group-by marker.
    Wildcard,
    /// Tag must equal one of these values (`v1|v2`).
    OneOf(Vec<String>),
}

impl TagFilter {
    /// Does a tag value satisfy the filter?
    pub fn matches(&self, value: &str) -> bool {
        match self {
            TagFilter::Equals(v) => v == value,
            TagFilter::Wildcard => true,
            TagFilter::OneOf(vs) => vs.iter().any(|v| v == value),
        }
    }

    /// Parse the OpenTSDB query syntax: `*`, `a|b|c`, or a literal.
    pub fn parse(s: &str) -> TagFilter {
        if s == "*" {
            TagFilter::Wildcard
        } else if s.contains('|') {
            TagFilter::OneOf(s.split('|').map(str::to_string).collect())
        } else {
            TagFilter::Equals(s.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn name_validation() {
        assert!(is_valid_name("ctt.air.co2"));
        assert!(is_valid_name("a-b_c/d.e2"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("has space"));
        assert!(!is_valid_name("has{brace"));
        assert!(!is_valid_name("ünïcode"));
    }

    #[test]
    fn datapoint_construction() {
        let p = DataPoint::new(
            "ctt.air.co2",
            tags(&[("city", "trondheim"), ("device", "node1")]),
            Timestamp(100),
            412.5,
        )
        .unwrap();
        assert_eq!(p.series_key(), "ctt.air.co2{city=trondheim,device=node1}");
    }

    #[test]
    fn tag_order_is_canonical() {
        let a = DataPoint::new("m", tags(&[("b", "2"), ("a", "1")]), Timestamp(0), 1.0).unwrap();
        let b = DataPoint::new("m", tags(&[("a", "1"), ("b", "2")]), Timestamp(0), 1.0).unwrap();
        assert_eq!(a.series_key(), b.series_key());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            DataPoint::new("bad metric", vec![], Timestamp(0), 1.0),
            Err(ModelError::BadMetric(_))
        ));
        assert!(matches!(
            DataPoint::new("m", tags(&[("k", "bad value")]), Timestamp(0), 1.0),
            Err(ModelError::BadTag(_, _))
        ));
        assert!(matches!(
            DataPoint::new("m", vec![], Timestamp(0), f64::NAN),
            Err(ModelError::BadValue)
        ));
        assert!(matches!(
            DataPoint::new("m", vec![], Timestamp(0), f64::INFINITY),
            Err(ModelError::BadValue)
        ));
    }

    #[test]
    fn empty_tagset_key() {
        let p = DataPoint::new("m", vec![], Timestamp(0), 1.0).unwrap();
        assert_eq!(p.series_key(), "m{}");
    }

    #[test]
    fn tag_filters() {
        assert!(TagFilter::Equals("a".into()).matches("a"));
        assert!(!TagFilter::Equals("a".into()).matches("b"));
        assert!(TagFilter::Wildcard.matches("anything"));
        let one_of = TagFilter::OneOf(vec!["a".into(), "b".into()]);
        assert!(one_of.matches("a") && one_of.matches("b") && !one_of.matches("c"));
    }

    #[test]
    fn tag_filter_parse() {
        assert_eq!(TagFilter::parse("*"), TagFilter::Wildcard);
        assert_eq!(TagFilter::parse("x"), TagFilter::Equals("x".into()));
        assert_eq!(
            TagFilter::parse("a|b"),
            TagFilter::OneOf(vec!["a".into(), "b".into()])
        );
    }

    #[test]
    fn error_display() {
        assert!(ModelError::BadMetric("x y".into())
            .to_string()
            .contains("x y"));
        assert!(ModelError::BadTag("k".into(), "v v".into())
            .to_string()
            .contains('k'));
        assert!(ModelError::BadValue.to_string().contains("finite"));
    }
}
