//! Query engine: tag filtering, group-by, downsampling, aggregation, rate.
//!
//! Mirrors the OpenTSDB query surface the Zeppelin dashboards use (§2.4):
//! a query names a metric, tag filters (exact / `*` / `a|b`), a time range,
//! an optional downsample (`interval-aggregator`, e.g. `1h-avg`), and a
//! cross-series aggregator. Wildcarded tag keys become group-by dimensions,
//! so `device=*` yields one result series per device.

use crate::error::TsdbError;
use crate::model::{TagFilter, TagSet};
use crate::rollup::{find_bucket, rollup_servable};
use crate::store::{dedup_last_write_wins, ScanCounts, Series, SeriesId, Tsdb};
use ctt_core::measurement::Series as OutSeries;
use ctt_core::time::{Span, Timestamp};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregation function over a bucket or across series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregator {
    /// Arithmetic mean.
    Avg,
    /// Sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Number of points.
    Count,
    /// First value in time order.
    First,
    /// Last value in time order.
    Last,
    /// Median (p50).
    Median,
    /// 95th percentile (linear interpolation between closest ranks —
    /// same definition as `ctt-analytics`' `quantile`).
    P95,
    /// Sample standard deviation.
    Dev,
}

impl Aggregator {
    /// Parse the OpenTSDB token (`avg`, `sum`, ...).
    pub fn parse(s: &str) -> Option<Aggregator> {
        Some(match s {
            "avg" => Aggregator::Avg,
            "sum" => Aggregator::Sum,
            "min" => Aggregator::Min,
            "max" => Aggregator::Max,
            "count" => Aggregator::Count,
            "first" => Aggregator::First,
            "last" => Aggregator::Last,
            "median" | "p50" => Aggregator::Median,
            "p95" => Aggregator::P95,
            "dev" => Aggregator::Dev,
            _ => return None,
        })
    }

    /// Apply to a slice of values (time-ordered). An empty slice yields NaN
    /// for value aggregators (0 for `Count`) rather than a panic — including
    /// `Min`/`Max`, whose fold identities would otherwise leak ±∞ into
    /// downsampled output.
    pub fn apply(self, values: &[f64]) -> f64 {
        if values.is_empty() {
            return match self {
                Aggregator::Count => 0.0,
                _ => f64::NAN,
            };
        }
        match self {
            Aggregator::Avg => values.iter().sum::<f64>() / values.len() as f64,
            Aggregator::Sum => values.iter().sum(),
            Aggregator::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregator::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregator::Count => values.len() as f64,
            Aggregator::First => values.first().copied().unwrap_or(f64::NAN),
            Aggregator::Last => values.last().copied().unwrap_or(f64::NAN),
            Aggregator::Median => percentile(values, 0.50),
            Aggregator::P95 => percentile(values, 0.95),
            Aggregator::Dev => {
                if values.len() < 2 {
                    return 0.0;
                }
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64)
                    .sqrt()
            }
        }
    }
}

impl fmt::Display for Aggregator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Aggregator::Avg => "avg",
            Aggregator::Sum => "sum",
            Aggregator::Min => "min",
            Aggregator::Max => "max",
            Aggregator::Count => "count",
            Aggregator::First => "first",
            Aggregator::Last => "last",
            Aggregator::Median => "median",
            Aggregator::P95 => "p95",
            Aggregator::Dev => "dev",
        };
        f.write_str(s)
    }
}

/// Percentile of an unsorted slice by linear interpolation on the sorted
/// sample (NaN when empty). This is the *same* definition as
/// `ctt-analytics::stats::quantile`, so a P95 computed in a query agrees
/// bit-for-bit with the same P95 computed in figures — the cross-crate
/// agreement test in `tests/percentile_agreement.rs` pins that.
fn percentile(values: &[f64], p: f64) -> f64 {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(f64::total_cmp);
    if v.is_empty() {
        return f64::NAN;
    }
    let pos = p * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    match (v.get(lo), v.get(hi)) {
        (Some(&a), Some(&b)) => a + (b - a) * frac,
        _ => f64::NAN,
    }
}

/// Missing-bucket fill policy for downsampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillPolicy {
    /// Skip empty buckets (default).
    #[default]
    None,
    /// Emit zero for empty buckets.
    Zero,
    /// Carry the previous bucket's value forward.
    Previous,
}

/// Downsampling specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Downsample {
    /// Bucket width.
    pub interval: Span,
    /// In-bucket aggregator.
    pub aggregator: Aggregator,
    /// Fill policy for empty buckets.
    pub fill: FillPolicy,
}

impl Downsample {
    /// Parse `"1h-avg"`, `"15m-max"`, `"300s-sum"` (OpenTSDB style).
    pub fn parse(s: &str) -> Option<Downsample> {
        let (interval, agg) = s.split_once('-')?;
        let (num, unit) = interval.split_at(interval.len().checked_sub(1)?);
        let n: i64 = num.parse().ok()?;
        let interval = match unit {
            "s" => Span::seconds(n),
            "m" => Span::minutes(n),
            "h" => Span::hours(n),
            "d" => Span::days(n),
            _ => return None,
        };
        Some(Downsample {
            interval,
            aggregator: Aggregator::parse(agg)?,
            fill: FillPolicy::None,
        })
    }
}

/// A query against the database.
#[derive(Debug, Clone)]
pub struct Query {
    /// Metric name.
    pub metric: String,
    /// Tag predicates. `Wildcard` keys also become group-by dimensions.
    pub filters: BTreeMap<String, TagFilter>,
    /// Range start (inclusive).
    pub start: Timestamp,
    /// Range end (exclusive).
    pub end: Timestamp,
    /// Optional per-series downsample.
    pub downsample: Option<Downsample>,
    /// Aggregator across the series of one group.
    pub aggregator: Aggregator,
    /// Convert values to per-second rate before aggregation.
    pub rate: bool,
}

impl Query {
    /// A simple average query over everything with the metric.
    pub fn range(metric: impl Into<String>, start: Timestamp, end: Timestamp) -> Query {
        Query {
            metric: metric.into(),
            filters: BTreeMap::new(),
            start,
            end,
            downsample: None,
            aggregator: Aggregator::Avg,
            rate: false,
        }
    }

    /// Add an exact-match tag filter.
    pub fn with_tag(mut self, key: impl Into<String>, value: impl Into<String>) -> Query {
        self.filters
            .insert(key.into(), TagFilter::Equals(value.into()));
        self
    }

    /// Add a wildcard (group-by) tag.
    pub fn group_by(mut self, key: impl Into<String>) -> Query {
        self.filters.insert(key.into(), TagFilter::Wildcard);
        self
    }

    /// Set the downsample.
    pub fn downsample(mut self, ds: Downsample) -> Query {
        self.downsample = Some(ds);
        self
    }

    /// Set the cross-series aggregator.
    pub fn aggregate(mut self, agg: Aggregator) -> Query {
        self.aggregator = agg;
        self
    }

    /// Request per-second rate conversion.
    pub fn as_rate(mut self) -> Query {
        self.rate = true;
        self
    }
}

/// One result group.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Values of the group-by tags for this group.
    pub group: TagSet,
    /// The aggregated series.
    pub series: OutSeries,
    /// How many stored series contributed.
    pub source_series: usize,
    /// Corrupt chunks skipped (quarantined) while reading this group.
    pub quarantined_chunks: usize,
    /// Points those quarantined chunks advertised.
    pub quarantined_points: u64,
}

/// Downsample a sorted point list. `seed` initializes the
/// [`FillPolicy::Previous`] carry — the value of the last point *before*
/// `start` — so leading empty buckets extend the pre-range value instead
/// of being silently dropped. Pass `None` when no point precedes the
/// range (or for the other fill policies, which ignore it).
fn downsample_points(
    points: &[(Timestamp, f64)],
    ds: Downsample,
    start: Timestamp,
    end: Timestamp,
    seed: Option<f64>,
) -> Vec<(Timestamp, f64)> {
    let mut out = Vec::new();
    if points.is_empty() && ds.fill == FillPolicy::None {
        return out;
    }
    let first_bucket = start.align_down(ds.interval);
    let mut bucket_start = first_bucket;
    let mut idx = 0usize;
    let mut prev_value: Option<f64> = seed;
    while bucket_start < end {
        let bucket_end = bucket_start + ds.interval;
        let mut vals = Vec::new();
        while let Some(&(t, v)) = points.get(idx) {
            if t >= bucket_end {
                break;
            }
            if t >= bucket_start {
                vals.push(v);
            }
            idx += 1;
        }
        if vals.is_empty() {
            match ds.fill {
                FillPolicy::None => {}
                FillPolicy::Zero => out.push((bucket_start, 0.0)),
                FillPolicy::Previous => {
                    if let Some(v) = prev_value {
                        out.push((bucket_start, v));
                    }
                }
            }
        } else {
            let v = ds.aggregator.apply(&vals);
            prev_value = Some(v);
            out.push((bucket_start, v));
        }
        bucket_start = bucket_end;
    }
    out
}

/// Convert a point list to per-second rates (length n-1 after duplicate
/// timestamps collapse). Colliding samples (dt == 0, e.g. a duplicate that
/// survived to this layer) are collapsed last-write-wins *before* the
/// pairwise rate, so the newer value still contributes to the next interval
/// instead of being silently dropped.
fn to_rate(points: &[(Timestamp, f64)]) -> Vec<(Timestamp, f64)> {
    let mut collapsed: Vec<(Timestamp, f64)> = Vec::with_capacity(points.len());
    for &(t, v) in points {
        match collapsed.last_mut() {
            Some(last) if last.0 == t => last.1 = v,
            _ => collapsed.push((t, v)),
        }
    }
    collapsed
        .iter()
        .zip(collapsed.iter().skip(1))
        .filter_map(|(&(t0, v0), &(t1, v1))| {
            let dt = (t1 - t0).as_seconds();
            if dt <= 0 {
                None
            } else {
                Some((t1, (v1 - v0) / dt as f64))
            }
        })
        .collect()
}

/// Serve one series' downsample over `[start, end)` bucket by bucket,
/// answering from seal-time rollups wherever a bucket is provably owned by
/// a single sealed chunk (and untouched by the open buffer), decoding raw
/// points — memoized per chunk — everywhere else. The output is
/// bit-identical to `downsample_points(collect(start, end), ...)`: rollup
/// values replay the raw aggregator folds exactly (see [`crate::rollup`]),
/// and every bucket the rollups cannot prove goes through the same decode
/// → sort → dedup → aggregate sequence the raw path uses.
#[allow(clippy::too_many_arguments)]
fn serve_downsample_series(
    s: &Series,
    start: Timestamp,
    end: Timestamp,
    ds: Downsample,
    rollup_interval: Span,
    seed: Option<f64>,
    quarantine: &mut crate::store::QuarantineReport,
    counts: &mut ScanCounts,
) -> Vec<(Timestamp, f64)> {
    // Rollups only answer their own bucket width and the aggregators whose
    // folds they replay; anything else is a plain raw downsample.
    if ds.interval != rollup_interval || !rollup_servable(ds.aggregator) {
        let (pts, q, c) = s.collect_counted(start, end);
        quarantine.merge(q);
        counts.merge(c);
        return downsample_points(&pts, ds, start, end, seed);
    }
    let (hits, skipped) = s.chunks_overlapping(start, end);
    counts.chunks_skipped += skipped;
    let open_span = s.open_span();
    // Per-call decode memo: a chunk is decoded (and, on failure,
    // quarantine-counted) at most once, matching the raw path's accounting.
    let mut memo: BTreeMap<usize, Option<Vec<(Timestamp, f64)>>> = BTreeMap::new();
    let mut out = Vec::new();
    let mut prev_value = seed;
    let mut bucket_start = start.align_down(ds.interval);
    while bucket_start < end {
        let bucket_end = bucket_start + ds.interval;
        let lo = bucket_start.max(start);
        let hi = bucket_end.min(end);
        let in_bucket: Vec<usize> = hits
            .iter()
            .copied()
            .filter(|&i| s.sealed.get(i).is_some_and(|c| c.start < hi && c.end >= lo))
            .collect();
        let open_overlaps = open_span.is_some_and(|(omin, omax)| omin < hi && omax >= lo);
        let interior = bucket_start >= start && bucket_end <= end;
        // `Some(v)` = the bucket's aggregated value; `None` = empty bucket.
        let mut value: Option<f64> = None;
        let mut resolved = false;
        if interior && !open_overlaps {
            match in_bucket.as_slice() {
                // No chunk can contain the bucket: provably empty.
                [] => resolved = true,
                [only] => {
                    if let Some(rollups) = s.sealed.get(*only).and_then(|c| c.rollups.as_ref()) {
                        resolved = true;
                        counts.rollup_buckets += 1;
                        value = find_bucket(rollups, bucket_start)
                            .and_then(|b| b.value_for(ds.aggregator));
                    }
                }
                // Several chunks share the bucket (out-of-order seals):
                // only a merged decode resolves duplicate timestamps.
                _ => {}
            }
        }
        if !resolved {
            counts.raw_buckets += 1;
            let mut pts: Vec<(Timestamp, f64)> = Vec::new();
            for &i in &in_bucket {
                let decoded = memo.entry(i).or_insert_with(|| match s.sealed.get(i) {
                    Some(sc) => match sc.chunk.decode() {
                        Ok(p) => {
                            counts.chunks_decoded += 1;
                            Some(p)
                        }
                        Err(_) => {
                            quarantine.chunks += 1;
                            quarantine.points += u64::from(sc.chunk.count());
                            None
                        }
                    },
                    None => None,
                });
                if let Some(p) = decoded {
                    pts.extend(p.iter().copied().filter(|&(t, _)| t >= lo && t < hi));
                }
            }
            pts.extend(s.open.iter().copied().filter(|&(t, _)| t >= lo && t < hi));
            pts.sort_by_key(|&(t, _)| t);
            dedup_last_write_wins(&mut pts);
            if !pts.is_empty() {
                let vals: Vec<f64> = pts.iter().map(|&(_, v)| v).collect();
                value = Some(ds.aggregator.apply(&vals));
            }
        }
        match value {
            Some(v) => {
                prev_value = Some(v);
                out.push((bucket_start, v));
            }
            None => match ds.fill {
                FillPolicy::None => {}
                FillPolicy::Zero => out.push((bucket_start, 0.0)),
                FillPolicy::Previous => {
                    if let Some(v) = prev_value {
                        out.push((bucket_start, v));
                    }
                }
            },
        }
        bucket_start = bucket_end;
    }
    out
}

/// Raw per-series points collected for one result group, before any rate /
/// downsample / cross-series aggregation. Each entry carries the canonical
/// series key so merges across shards aggregate in a shard-count-independent
/// order — the byte-identical-results guarantee of `ShardedTsdb`.
#[derive(Debug, Default, Clone)]
pub(crate) struct GroupCollection {
    /// `(canonical series key, points in [start, end))` — raw, or already
    /// downsampled when [`GroupCollection::downsampled`] is set.
    pub(crate) series: Vec<(String, Vec<(Timestamp, f64)>)>,
    /// Corruption skipped while reading this group.
    pub(crate) quarantine: crate::store::QuarantineReport,
    /// Scan accounting (index skips, decodes, rollup vs raw buckets).
    pub(crate) counts: ScanCounts,
    /// `series` holds collect-time downsampled buckets; finalize must not
    /// downsample again.
    pub(crate) downsampled: bool,
}

impl GroupCollection {
    /// Fold another shard's collection for the same group into this one.
    pub(crate) fn merge(&mut self, other: GroupCollection) {
        self.series.extend(other.series);
        self.quarantine.merge(other.quarantine);
        self.counts.merge(other.counts);
        self.downsampled |= other.downsampled;
    }
}

/// Phase 1 of query execution: match series against the filters, group by
/// the wildcard tags, and read each series' points. No cross-series
/// aggregation happens here, so collections from several shards can be
/// merged before [`finalize_groups`] aggregates — averaging averages would
/// be wrong.
///
/// Non-rate downsamples are applied here, per series (each series lives
/// wholly in one shard, so collect-time downsampling commutes with the
/// shard merge); with `use_rollups` they are answered from seal-time
/// rollups where possible. `FillPolicy::Previous` seeds its carry from the
/// last point preceding the range on both paths. Rate queries keep their
/// raw points (rate + downsample runs in finalize, unseeded: a pre-range
/// *rate* would need two pre-range points and is out of scope).
pub(crate) fn collect_groups(
    db: &Tsdb,
    q: &Query,
    use_rollups: bool,
) -> Result<BTreeMap<TagSet, GroupCollection>, TsdbError> {
    let matching: Vec<SeriesId> = db
        .series_for_metric(&q.metric)
        .iter()
        .copied()
        .filter(|&id| {
            q.filters.iter().all(|(k, f)| {
                db.tags(id)
                    .and_then(|tags| tags.get(k))
                    .map(|v| f.matches(v))
                    .unwrap_or(false)
            })
        })
        .collect();
    let group_keys: Vec<&String> = q
        .filters
        .iter()
        .filter(|(_, f)| matches!(f, TagFilter::Wildcard))
        .map(|(k, _)| k)
        .collect();
    let mut groups: BTreeMap<TagSet, GroupCollection> = BTreeMap::new();
    for id in matching {
        let mut group = TagSet::new();
        for &k in &group_keys {
            if let Some(v) = db.tags(id).and_then(|tags| tags.get(k)) {
                group.insert(k.clone(), v.clone());
            }
        }
        let key = match (db.metric(id), db.tags(id)) {
            (Some(metric), Some(tags)) => crate::model::series_key(metric, tags),
            _ => continue, // unreachable: id came from the metric index
        };
        let Some(series) = db.series.get(id.0 as usize) else {
            continue; // unreachable: id came from the metric index
        };
        let entry = groups.entry(group).or_default();
        match q.downsample {
            Some(ds) if !q.rate => {
                let seed = if ds.fill == FillPolicy::Previous {
                    series.last_value_before(q.start)
                } else {
                    None
                };
                let pts = if use_rollups {
                    serve_downsample_series(
                        series,
                        q.start,
                        q.end,
                        ds,
                        db.rollup_interval(),
                        seed,
                        &mut entry.quarantine,
                        &mut entry.counts,
                    )
                } else {
                    let (raw, skipped, c) = series.collect_counted(q.start, q.end);
                    entry.quarantine.merge(skipped);
                    entry.counts.merge(c);
                    downsample_points(&raw, ds, q.start, q.end, seed)
                };
                entry.downsampled = true;
                entry.series.push((key, pts));
            }
            _ => {
                let (pts, skipped, c) = series.collect_counted(q.start, q.end);
                entry.quarantine.merge(skipped);
                entry.counts.merge(c);
                entry.series.push((key, pts));
            }
        }
    }
    Ok(groups)
}

/// Phase 2 of query execution: per-series rate + downsample (unless
/// already downsampled at collect time), then cross-series aggregation per
/// group. Series are processed in canonical key order, so the result is
/// independent of insertion (and shard) order.
pub(crate) fn finalize_groups(
    groups: BTreeMap<TagSet, GroupCollection>,
    q: &Query,
) -> Vec<QueryResult> {
    let mut results = Vec::with_capacity(groups.len());
    for (group, mut coll) in groups {
        coll.series.sort_by(|a, b| a.0.cmp(&b.0));
        let source_series = coll.series.len();
        let downsampled = coll.downsampled;
        let mut per_series: Vec<Vec<(Timestamp, f64)>> = Vec::with_capacity(source_series);
        for (_, mut pts) in coll.series {
            if !downsampled {
                if q.rate {
                    pts = to_rate(&pts);
                }
                if let Some(ds) = q.downsample {
                    pts = downsample_points(&pts, ds, q.start, q.end, None);
                }
            }
            per_series.push(pts);
        }
        let sole = if per_series.len() == 1 {
            per_series.pop()
        } else {
            None
        };
        let series = match sole {
            Some(only) => OutSeries::from_points(only),
            None => {
                // Merge: aggregate equal timestamps across series.
                let mut merged: BTreeMap<Timestamp, Vec<f64>> = BTreeMap::new();
                for pts in per_series {
                    for (t, v) in pts {
                        merged.entry(t).or_default().push(v);
                    }
                }
                OutSeries::from_points(
                    merged
                        .into_iter()
                        .map(|(t, vals)| (t, q.aggregator.apply(&vals)))
                        .collect(),
                )
            }
        };
        results.push(QueryResult {
            group,
            series,
            source_series,
            quarantined_chunks: coll.quarantine.chunks,
            quarantined_points: coll.quarantine.points,
        });
    }
    results
}

/// Execute a query through the full serving stack (block index + seal-time
/// rollups). Storage corruption does not fail the query: corrupt chunks
/// are quarantined and surfaced in the per-group quarantine counts. An
/// unmatched metric or filter is an empty result set, not an error.
pub fn execute(db: &Tsdb, q: &Query) -> Result<Vec<QueryResult>, TsdbError> {
    Ok(finalize_groups(collect_groups(db, q, true)?, q))
}

/// Execute a query strictly by decoding raw chunks — the reference path
/// the serving stack must match byte for byte. Used by the equivalence
/// suite and the before/after benchmarks.
pub fn execute_raw(db: &Tsdb, q: &Query) -> Result<Vec<QueryResult>, TsdbError> {
    Ok(finalize_groups(collect_groups(db, q, false)?, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DataPoint;

    fn dp(metric: &str, device: &str, city: &str, t: i64, v: f64) -> DataPoint {
        DataPoint::new(
            metric,
            vec![
                ("device".to_string(), device.to_string()),
                ("city".to_string(), city.to_string()),
            ],
            Timestamp(t),
            v,
        )
        .unwrap()
    }

    fn sample_db() -> Tsdb {
        let mut db = Tsdb::new();
        for i in 0..12 {
            db.put(&dp("co2", "n1", "trd", i * 300, 400.0 + i as f64));
            db.put(&dp("co2", "n2", "trd", i * 300, 500.0 + i as f64));
            db.put(&dp("co2", "n3", "vejle", i * 300, 600.0 + i as f64));
        }
        db
    }

    #[test]
    fn aggregator_functions() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(Aggregator::Avg.apply(&v), 2.5);
        assert_eq!(Aggregator::Sum.apply(&v), 10.0);
        assert_eq!(Aggregator::Min.apply(&v), 1.0);
        assert_eq!(Aggregator::Max.apply(&v), 4.0);
        assert_eq!(Aggregator::Count.apply(&v), 4.0);
        assert_eq!(Aggregator::First.apply(&v), 4.0);
        assert_eq!(Aggregator::Last.apply(&v), 2.0);
        // Linear interpolation (same definition as ctt-analytics quantile).
        assert_eq!(Aggregator::Median.apply(&v), 2.5);
        assert!((Aggregator::P95.apply(&v) - 3.85).abs() < 1e-12);
        let dev = Aggregator::Dev.apply(&v);
        assert!((dev - 1.29099).abs() < 1e-4);
        assert_eq!(Aggregator::Dev.apply(&[5.0]), 0.0);
    }

    #[test]
    fn empty_slice_yields_nan_not_infinity() {
        for agg in [
            Aggregator::Avg,
            Aggregator::Sum,
            Aggregator::Min,
            Aggregator::Max,
            Aggregator::First,
            Aggregator::Last,
            Aggregator::Median,
            Aggregator::P95,
            Aggregator::Dev,
        ] {
            let v = agg.apply(&[]);
            assert!(v.is_nan(), "{agg}([]) = {v}, want NaN");
        }
        assert_eq!(Aggregator::Count.apply(&[]), 0.0);
    }

    #[test]
    fn rate_collapses_colliding_samples_last_write_wins() {
        // A duplicate timestamp: the newer value (20) must feed the next
        // interval's rate instead of being silently dropped.
        let pts = vec![
            (Timestamp(0), 0.0),
            (Timestamp(100), 10.0),
            (Timestamp(100), 20.0),
            (Timestamp(200), 30.0),
        ];
        let rates = to_rate(&pts);
        assert_eq!(
            rates,
            vec![(Timestamp(100), 0.2), (Timestamp(200), 0.1)],
            "collision must collapse last-write-wins, not vanish"
        );
    }

    #[test]
    fn aggregator_parse_display_roundtrip() {
        for name in [
            "avg", "sum", "min", "max", "count", "first", "last", "median", "p95", "dev",
        ] {
            let a = Aggregator::parse(name).unwrap();
            let shown = a.to_string();
            assert_eq!(Aggregator::parse(&shown), Some(a));
        }
        assert_eq!(Aggregator::parse("bogus"), None);
    }

    #[test]
    fn downsample_parse() {
        let ds = Downsample::parse("1h-avg").unwrap();
        assert_eq!(ds.interval, Span::hours(1));
        assert_eq!(ds.aggregator, Aggregator::Avg);
        assert_eq!(
            Downsample::parse("15m-max").unwrap().interval,
            Span::minutes(15)
        );
        assert!(Downsample::parse("nope").is_none());
        assert!(Downsample::parse("1x-avg").is_none());
        assert!(Downsample::parse("1h-bogus").is_none());
    }

    #[test]
    fn single_series_query() {
        let db = sample_db();
        let q = Query::range("co2", Timestamp(0), Timestamp(3600)).with_tag("device", "n1");
        let rs = execute(&db, &q).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].source_series, 1);
        assert_eq!(rs[0].series.len(), 12);
        assert_eq!(rs[0].series.points[0], (Timestamp(0), 400.0));
    }

    #[test]
    fn cross_series_average() {
        let db = sample_db();
        let q = Query::range("co2", Timestamp(0), Timestamp(3600)).with_tag("city", "trd");
        let rs = execute(&db, &q).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].source_series, 2);
        // avg(400, 500) = 450 at t=0.
        assert_eq!(rs[0].series.points[0], (Timestamp(0), 450.0));
    }

    #[test]
    fn group_by_device() {
        let db = sample_db();
        let q = Query::range("co2", Timestamp(0), Timestamp(3600)).group_by("device");
        let rs = execute(&db, &q).unwrap();
        assert_eq!(rs.len(), 3);
        let groups: Vec<String> = rs
            .iter()
            .map(|r| r.group.get("device").unwrap().clone())
            .collect();
        assert_eq!(groups, vec!["n1", "n2", "n3"]);
    }

    #[test]
    fn filter_and_group_compose() {
        let db = sample_db();
        let q = Query::range("co2", Timestamp(0), Timestamp(3600))
            .with_tag("city", "trd")
            .group_by("device");
        let rs = execute(&db, &q).unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn one_of_filter() {
        let db = sample_db();
        let mut q = Query::range("co2", Timestamp(0), Timestamp(3600));
        q.filters.insert(
            "device".to_string(),
            TagFilter::OneOf(vec!["n1".to_string(), "n3".to_string()]),
        );
        let rs = execute(&db, &q).unwrap();
        assert_eq!(rs[0].source_series, 2);
    }

    #[test]
    fn downsample_avg_buckets() {
        let db = sample_db();
        let q = Query::range("co2", Timestamp(0), Timestamp(3600))
            .with_tag("device", "n1")
            .downsample(Downsample {
                interval: Span::minutes(15),
                aggregator: Aggregator::Avg,
                fill: FillPolicy::None,
            });
        let rs = execute(&db, &q).unwrap();
        // 12 points over 60 min → 4 buckets of 3.
        assert_eq!(rs[0].series.len(), 4);
        // First bucket: avg(400,401,402) = 401.
        assert_eq!(rs[0].series.points[0], (Timestamp(0), 401.0));
        assert_eq!(rs[0].series.points[1].0, Timestamp(900));
    }

    #[test]
    fn downsample_fill_policies() {
        let pts = vec![(Timestamp(0), 1.0), (Timestamp(2000), 5.0)];
        let mk = |fill| Downsample {
            interval: Span::seconds(1000),
            aggregator: Aggregator::Avg,
            fill,
        };
        let none = downsample_points(
            &pts,
            mk(FillPolicy::None),
            Timestamp(0),
            Timestamp(3000),
            None,
        );
        assert_eq!(none.len(), 2);
        let zero = downsample_points(
            &pts,
            mk(FillPolicy::Zero),
            Timestamp(0),
            Timestamp(3000),
            None,
        );
        assert_eq!(
            zero,
            vec![
                (Timestamp(0), 1.0),
                (Timestamp(1000), 0.0),
                (Timestamp(2000), 5.0)
            ]
        );
        let prev = downsample_points(
            &pts,
            mk(FillPolicy::Previous),
            Timestamp(0),
            Timestamp(3000),
            None,
        );
        assert_eq!(prev[1], (Timestamp(1000), 1.0));
    }

    #[test]
    fn previous_fill_seeded_from_pre_range_value() {
        // Points end before the queried range begins; the carry must seed
        // from the last pre-range value instead of emitting nothing.
        let pts: Vec<(Timestamp, f64)> = vec![];
        let ds = Downsample {
            interval: Span::seconds(1000),
            aggregator: Aggregator::Avg,
            fill: FillPolicy::Previous,
        };
        let unseeded = downsample_points(&pts, ds, Timestamp(0), Timestamp(3000), None);
        assert!(unseeded.is_empty(), "no seed, no carry: {unseeded:?}");
        let seeded = downsample_points(&pts, ds, Timestamp(0), Timestamp(3000), Some(7.5));
        assert_eq!(
            seeded,
            vec![
                (Timestamp(0), 7.5),
                (Timestamp(1000), 7.5),
                (Timestamp(2000), 7.5)
            ]
        );
        // A real bucket overrides the seed and becomes the new carry.
        let pts = vec![(Timestamp(1500), 2.0)];
        let mixed = downsample_points(&pts, ds, Timestamp(0), Timestamp(3000), Some(7.5));
        assert_eq!(
            mixed,
            vec![
                (Timestamp(0), 7.5),
                (Timestamp(1000), 2.0),
                (Timestamp(2000), 2.0)
            ]
        );
    }

    #[test]
    fn previous_fill_seeds_through_execute() {
        let mut db = Tsdb::with_layout(4, Span::seconds(1000));
        // Data only before t=2000; query [2000, 5000) with Previous fill.
        for i in 0..6 {
            db.put(&dp("co2", "n1", "trd", i * 300, 400.0 + i as f64));
        }
        let q = Query::range("co2", Timestamp(2000), Timestamp(5000))
            .with_tag("device", "n1")
            .downsample(Downsample {
                interval: Span::seconds(1000),
                aggregator: Aggregator::Last,
                fill: FillPolicy::Previous,
            });
        let rs = execute(&db, &q).unwrap();
        // Last pre-range point is (1500, 405): every empty bucket carries it.
        assert_eq!(
            rs[0].series.points,
            vec![
                (Timestamp(2000), 405.0),
                (Timestamp(3000), 405.0),
                (Timestamp(4000), 405.0)
            ]
        );
        // The raw reference path agrees byte for byte.
        assert_eq!(execute_raw(&db, &q).unwrap(), rs);
    }

    #[test]
    fn previous_fill_seed_negative_timestamps() {
        let mut db = Tsdb::with_layout(4, Span::seconds(600));
        // Pre-epoch data; align_down must bucket negatives correctly.
        db.put(&dp("co2", "n1", "trd", -3000, 1.0));
        db.put(&dp("co2", "n1", "trd", -2500, 2.0));
        let q = Query::range("co2", Timestamp(-1800), Timestamp(0))
            .with_tag("device", "n1")
            .downsample(Downsample {
                interval: Span::seconds(600),
                aggregator: Aggregator::Avg,
                fill: FillPolicy::Previous,
            });
        let rs = execute(&db, &q).unwrap();
        assert_eq!(
            rs[0].series.points,
            vec![
                (Timestamp(-1800), 2.0),
                (Timestamp(-1200), 2.0),
                (Timestamp(-600), 2.0)
            ],
            "pre-epoch buckets must align via div_euclid and carry the seed"
        );
        assert_eq!(execute_raw(&db, &q).unwrap(), rs);
    }

    #[test]
    fn rate_conversion() {
        let mut db = Tsdb::new();
        // A counter increasing 60 per 300 s → rate 0.2/s.
        for i in 0..5 {
            db.put(&dp("ctr", "n1", "trd", i * 300, i as f64 * 60.0));
        }
        let q = Query::range("ctr", Timestamp(0), Timestamp(3000))
            .with_tag("device", "n1")
            .as_rate();
        let rs = execute(&db, &q).unwrap();
        assert_eq!(rs[0].series.len(), 4);
        for &(_, v) in &rs[0].series.points {
            assert!((v - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_results() {
        let db = sample_db();
        let q = Query::range("nope", Timestamp(0), Timestamp(3600));
        assert!(execute(&db, &q).unwrap().is_empty());
        let q = Query::range("co2", Timestamp(0), Timestamp(3600)).with_tag("device", "nope");
        assert!(execute(&db, &q).unwrap().is_empty());
    }

    #[test]
    fn filter_requires_tag_presence() {
        let mut db = sample_db();
        // A series without the "city" tag.
        db.put(
            &DataPoint::new(
                "co2",
                vec![("device".to_string(), "n9".to_string())],
                Timestamp(0),
                1.0,
            )
            .unwrap(),
        );
        let q = Query::range("co2", Timestamp(0), Timestamp(3600)).group_by("city");
        let rs = execute(&db, &q).unwrap();
        // n9 has no city tag: excluded by the wildcard filter.
        let total: usize = rs.iter().map(|r| r.source_series).sum();
        assert_eq!(total, 3);
    }
}
