//! Seal-time materialized rollups: pre-downsampled per-bucket summaries
//! written alongside each sealed chunk (OpenTSDB-style), so dashboard
//! downsample queries over sealed data are served without re-decoding the
//! Gorilla bitstream.
//!
//! The non-negotiable property is **byte-identity with the raw path**: a
//! rollup-served value must be bit-for-bit the value `Aggregator::apply`
//! would produce over the bucket's decoded points. f64 addition is not
//! associative, so every accumulator here replays the *exact* fold the raw
//! aggregators use — `sum` starts at `-0.0` (std's `Sum<f64>` identity:
//! `-0.0 + x == x` for every `x`, including `-0.0`, where `0.0 + -0.0`
//! would flip the sign) and adds points in time order, `min`/`max` fold from
//! `±INFINITY` through `f64::min`/`f64::max` (which also reproduces the
//! raw path's NaN handling). Order-sensitive aggregators that need the
//! full sample (`Median`, `P95`, `Dev`) are never rollup-served.

use crate::query::Aggregator;
use ctt_core::time::{Span, Timestamp};

/// Pre-aggregated summary of one rollup bucket within one sealed chunk.
///
/// Built from the chunk's sorted, deduplicated points at seal time;
/// immutable afterwards (corruption invalidates the whole rollup vector
/// rather than patching it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RollupBucket {
    /// Bucket start (aligned down to the store's rollup interval).
    pub start: Timestamp,
    /// Points in the bucket.
    pub count: u32,
    /// Sum folded from `-0.0` in time order (bit-identical to `iter().sum()`).
    pub sum: f64,
    /// Minimum folded from `+∞` through `f64::min`.
    pub min: f64,
    /// Maximum folded from `-∞` through `f64::max`.
    pub max: f64,
    /// First value in time order.
    pub first: f64,
    /// Last value in time order.
    pub last: f64,
}

impl RollupBucket {
    /// Start a bucket from its first point, replaying each aggregator's
    /// fold from its identity element (`-0.0 + v`, not `v` and not
    /// `0.0 + v`: std's `iter().sum()` folds from `-0.0`, so the raw sum
    /// of `[-0.0]` is `-0.0`, and Avg divides this sum, so the sign of
    /// zero is observable).
    fn seed(start: Timestamp, v: f64) -> RollupBucket {
        RollupBucket {
            start,
            count: 1,
            sum: -0.0 + v,
            min: f64::min(f64::INFINITY, v),
            max: f64::max(f64::NEG_INFINITY, v),
            first: v,
            last: v,
        }
    }

    /// Fold one more point (time order) into the bucket.
    fn fold(&mut self, v: f64) {
        self.count = self.count.saturating_add(1);
        self.sum += v;
        self.min = f64::min(self.min, v);
        self.max = f64::max(self.max, v);
        self.last = v;
    }

    /// The value [`Aggregator::apply`] would produce over this bucket's
    /// points, or `None` for aggregators that need the full sample.
    pub fn value_for(&self, agg: Aggregator) -> Option<f64> {
        Some(match agg {
            Aggregator::Avg => self.sum / f64::from(self.count),
            Aggregator::Sum => self.sum,
            Aggregator::Min => self.min,
            Aggregator::Max => self.max,
            Aggregator::Count => f64::from(self.count),
            Aggregator::First => self.first,
            Aggregator::Last => self.last,
            Aggregator::Median | Aggregator::P95 | Aggregator::Dev => return None,
        })
    }

    /// Approximate in-memory size, for storage stats.
    pub const SIZE_BYTES: usize = std::mem::size_of::<RollupBucket>();
}

/// Whether an aggregator can ever be served from rollups.
pub fn rollup_servable(agg: Aggregator) -> bool {
    !matches!(agg, Aggregator::Median | Aggregator::P95 | Aggregator::Dev)
}

/// Build the rollup vector for a chunk's points (must be time-sorted and
/// deduplicated — exactly the state a chunk is sealed in). One bucket per
/// occupied interval, in time order; empty buckets are not materialized.
pub fn build_rollups(points: &[(Timestamp, f64)], interval: Span) -> Vec<RollupBucket> {
    let mut out: Vec<RollupBucket> = Vec::new();
    for &(t, v) in points {
        let b = t.align_down(interval);
        match out.last_mut() {
            Some(last) if last.start == b => last.fold(v),
            _ => out.push(RollupBucket::seed(b, v)),
        }
    }
    out
}

/// The rollup bucket starting exactly at `start`, if materialized. The
/// vector is sorted by start, so this is a binary search.
pub fn find_bucket(rollups: &[RollupBucket], start: Timestamp) -> Option<&RollupBucket> {
    rollups
        .binary_search_by_key(&start, |b| b.start)
        .ok()
        .and_then(|i| rollups.get(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[(i64, f64)]) -> Vec<(Timestamp, f64)> {
        raw.iter().map(|&(t, v)| (Timestamp(t), v)).collect()
    }

    #[test]
    fn buckets_match_raw_aggregator_folds() {
        let points = pts(&[
            (0, 3.0),
            (100, 1.0),
            (200, 2.0),
            (3600, 10.0),
            (3700, -4.0),
            (7300, 5.5),
        ]);
        let rollups = build_rollups(&points, Span::hours(1));
        assert_eq!(rollups.len(), 3);
        for rb in &rollups {
            let vals: Vec<f64> = points
                .iter()
                .filter(|&&(t, _)| t.align_down(Span::hours(1)) == rb.start)
                .map(|&(_, v)| v)
                .collect();
            for agg in [
                Aggregator::Avg,
                Aggregator::Sum,
                Aggregator::Min,
                Aggregator::Max,
                Aggregator::Count,
                Aggregator::First,
                Aggregator::Last,
            ] {
                let served = rb.value_for(agg).expect("servable");
                let raw = agg.apply(&vals);
                assert_eq!(
                    served.to_bits(),
                    raw.to_bits(),
                    "{agg} bucket {:?}: served {served} vs raw {raw}",
                    rb.start
                );
            }
        }
    }

    #[test]
    fn negative_zero_sum_matches_raw_fold() {
        let points = pts(&[(0, -0.0)]);
        let rollups = build_rollups(&points, Span::hours(1));
        let served = rollups[0].value_for(Aggregator::Sum).unwrap();
        let raw = Aggregator::Sum.apply(&[-0.0]);
        assert_eq!(
            served.to_bits(),
            raw.to_bits(),
            "sum must replay std's -0.0 fold identity bit-for-bit"
        );
        assert_eq!(
            rollups[0].value_for(Aggregator::Avg).unwrap().to_bits(),
            Aggregator::Avg.apply(&[-0.0]).to_bits()
        );
    }

    #[test]
    fn negative_timestamps_align_into_pre_epoch_buckets() {
        let points = pts(&[(-7200, 1.0), (-3599, 2.0), (-1, 3.0), (0, 4.0)]);
        let rollups = build_rollups(&points, Span::hours(1));
        let starts: Vec<i64> = rollups.iter().map(|b| b.start.0).collect();
        assert_eq!(starts, vec![-7200, -3600, 0]);
        assert_eq!(
            rollups[1].count, 2,
            "-3599 and -1 share the [-3600,0) bucket"
        );
    }

    #[test]
    fn order_sensitive_aggregators_not_servable() {
        for agg in [Aggregator::Median, Aggregator::P95, Aggregator::Dev] {
            assert!(!rollup_servable(agg));
            assert_eq!(
                build_rollups(&pts(&[(0, 1.0)]), Span::hours(1))[0].value_for(agg),
                None
            );
        }
        assert!(rollup_servable(Aggregator::Avg));
    }

    #[test]
    fn find_bucket_binary_search() {
        let rollups = build_rollups(&pts(&[(0, 1.0), (3600, 2.0), (10800, 3.0)]), Span::hours(1));
        assert_eq!(
            find_bucket(&rollups, Timestamp(3600)).map(|b| b.first),
            Some(2.0)
        );
        assert!(find_bucket(&rollups, Timestamp(7200)).is_none());
    }
}
