//! Sharded storage: N independent [`Tsdb`] partitions behind `RwLock`s.
//!
//! Series are partitioned by an FNV-1a hash of the canonical series key
//! (`metric{k1=v1,...}`), so every series lives in exactly one shard and a
//! point's destination is a pure function of its identity — stable across
//! runs, process restarts, and shard counts that divide the hash space the
//! same way. Each shard owns its own intern map, sealed chunks, and open
//! buffers; writers contend only within a shard, and a batched write locks
//! each touched shard once.
//!
//! Queries run in two phases (see [`crate::query`]): every shard *collects*
//! raw per-series points under a read lock, the collections are merged, and
//! aggregation happens once over the merged set. Aggregating per shard and
//! then combining would be wrong (an average of averages weights shards,
//! not points) — the two-phase split is what makes an N-shard store return
//! byte-identical query results to a 1-shard store.

use crate::error::TsdbError;
use crate::model::{series_key, DataPoint, TagSet};
use crate::query::{collect_groups, finalize_groups, GroupCollection, Query, QueryResult};
use crate::store::{
    BitFlipOutcome, IntegrityReport, QuarantineReport, StoreStats, Tsdb, DEFAULT_CHUNK_SIZE,
};
use ctt_core::time::Timestamp;
use ctt_obs::{Counter, Registry};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Default shard count: matches the ingest worker pool's default width.
pub const DEFAULT_SHARDS: usize = 4;

/// FNV-1a 64-bit hash — deterministic (unlike `std`'s `RandomState`), so
/// shard assignment is replay-stable across processes and runs.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-shard observability counters, registered as `tsdb.shard<i>.*`.
/// Detached (uncounted into any registry) until
/// [`ShardedTsdb::attach_registry`] is called; counter handles are atomics,
/// so shard instrumentation never takes the registry lock on the data path.
#[derive(Debug, Clone, Default)]
struct ShardObs {
    puts: Counter,
    queries: Counter,
    quarantined_points: Counter,
}

/// A time-series database partitioned across N single-owner shards.
#[derive(Debug)]
pub struct ShardedTsdb {
    shards: Vec<RwLock<Tsdb>>,
    obs: Vec<ShardObs>,
}

impl Default for ShardedTsdb {
    fn default() -> Self {
        ShardedTsdb::new(DEFAULT_SHARDS)
    }
}

impl ShardedTsdb {
    /// New store with `shards` partitions (clamped to at least 1) and the
    /// default points-per-chunk.
    pub fn new(shards: usize) -> Self {
        ShardedTsdb::with_chunk_size(shards, DEFAULT_CHUNK_SIZE)
    }

    /// New store with a custom points-per-chunk in every shard.
    pub fn with_chunk_size(shards: usize, chunk_size: usize) -> Self {
        let n = shards.max(1);
        ShardedTsdb {
            shards: (0..n)
                .map(|_| RwLock::new(Tsdb::with_chunk_size(chunk_size)))
                .collect(),
            obs: vec![ShardObs::default(); n],
        }
    }

    /// Register per-shard put/query/quarantine counters into `registry`
    /// (as `tsdb.shard<i>.*`). Counts accumulated before attachment are
    /// discarded — attach before ingest starts.
    pub fn attach_registry(&mut self, registry: &Registry) {
        self.obs = (0..self.shards.len())
            .map(|i| ShardObs {
                puts: registry.counter(&format!("tsdb.shard{i}.puts")),
                queries: registry.counter(&format!("tsdb.shard{i}.queries")),
                quarantined_points: registry.counter(&format!("tsdb.shard{i}.quarantined_points")),
            })
            .collect();
    }

    fn obs_of(&self, shard: usize) -> Option<&ShardObs> {
        self.obs.get(shard)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index that owns a canonical series key.
    pub fn shard_of_key(&self, key: &str) -> usize {
        (fnv1a(key) % self.shards.len() as u64) as usize
    }

    /// Insert one data point. Prefer [`ShardedTsdb::put_batch`] on the hot
    /// path — it locks each touched shard once per batch, not per point.
    pub fn put(&self, point: &DataPoint) {
        let shard = self.shard_of_key(&point.series_key());
        if let Some(s) = self.shards.get(shard) {
            s.write().put(point);
            if let Some(o) = self.obs_of(shard) {
                o.puts.inc();
            }
        }
    }

    /// Batched ingest: bucket points by owning shard, then lock each
    /// touched shard exactly once. Returns the number of points written.
    pub fn put_batch(&self, points: &[DataPoint]) -> u64 {
        let mut buckets: Vec<Vec<&DataPoint>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for p in points {
            let shard = self.shard_of_key(&p.series_key());
            if let Some(bucket) = buckets.get_mut(shard) {
                bucket.push(p);
            }
        }
        let mut written = 0u64;
        for (i, (shard, bucket)) in self.shards.iter().zip(&buckets).enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut guard = shard.write();
            for p in bucket {
                guard.put(p);
                written += 1;
            }
            if let Some(o) = self.obs_of(i) {
                o.puts.add(bucket.len() as u64);
            }
        }
        written
    }

    /// Execute a query across every shard: per-shard raw collection under
    /// read locks, one merged aggregation pass. Byte-identical to running
    /// the same query against a single [`Tsdb`] holding all the data.
    pub fn execute(&self, q: &Query) -> Result<Vec<QueryResult>, TsdbError> {
        let mut merged: BTreeMap<TagSet, GroupCollection> = BTreeMap::new();
        for (i, shard) in self.shards.iter().enumerate() {
            if let Some(o) = self.obs_of(i) {
                o.queries.inc();
            }
            // Collect fully under the read lock, merge after releasing it.
            let collected = collect_groups(&shard.read(), q)?;
            for (group, coll) in collected {
                merged.entry(group).or_default().merge(coll);
            }
        }
        Ok(finalize_groups(merged, q))
    }

    /// Raw points of one exactly-identified series in `[start, end)`, with
    /// the quarantine report. `None` when the series is unknown. Routes
    /// directly to the owning shard — a point lookup touches one lock.
    pub fn read_series(
        &self,
        metric: &str,
        tags: &TagSet,
        start: Timestamp,
        end: Timestamp,
    ) -> Option<(Vec<(Timestamp, f64)>, QuarantineReport)> {
        let shard = self.shard_of_key(&series_key(metric, tags));
        let guard = self.shards.get(shard)?.read();
        let id = guard.series_id(metric, tags)?;
        if let Some(o) = self.obs_of(shard) {
            o.queries.inc();
        }
        guard.read_with_quarantine(id, start, end).ok()
    }

    /// Storage statistics summed across shards.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for s in &self.shards {
            let st = s.read().stats();
            total.series += st.series;
            total.points += st.points;
            total.chunks += st.chunks;
            total.bytes += st.bytes;
        }
        total
    }

    /// Per-shard statistics, in shard order (balance inspection).
    pub fn per_shard_stats(&self) -> Vec<StoreStats> {
        self.shards.iter().map(|s| s.read().stats()).collect()
    }

    /// All distinct metric names across shards (sorted, deduplicated).
    pub fn metrics(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.shards {
            let guard = s.read();
            out.extend(guard.metrics().into_iter().map(str::to_string));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Force-seal all open buffers in every shard.
    pub fn seal_all(&self) {
        for s in &self.shards {
            s.write().seal_all();
        }
    }

    /// Retention across all shards: drop data strictly before `cutoff`.
    /// Returns total points dropped; if any shard hits a corrupt straddling
    /// chunk the first error is reported after every shard has been swept
    /// (no shard is skipped because an earlier one was corrupt).
    pub fn evict_before(&self, cutoff: Timestamp) -> Result<u64, TsdbError> {
        let mut dropped = 0u64;
        let mut first_err = None;
        for s in &self.shards {
            match s.write().evict_before(cutoff) {
                Ok(n) => dropped += n,
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(dropped),
        }
    }

    /// Trial-decode every sealed chunk in every shard. The conservation
    /// invariant `readable_points + quarantined_points == stats().points`
    /// holds across the whole sharded store, so the chaos loss ledger
    /// balances exactly as it did against the flat store.
    pub fn integrity_scan(&self) -> IntegrityReport {
        let mut total = IntegrityReport::default();
        for s in &self.shards {
            let r = s.read().integrity_scan();
            total.readable_points += r.readable_points;
            total.quarantined_chunks += r.quarantined_chunks;
            total.quarantined_points += r.quarantined_points;
        }
        total
    }

    /// Fault injection: flip one bit in the `nth` sealed chunk, counting
    /// chunks across shards in shard order (modulo the global total), and
    /// report the outcome. Deterministic for a fixed ingest history.
    pub fn flip_chunk_bit(&self, nth_chunk: u64, bit: u64) -> BitFlipOutcome {
        let counts: Vec<usize> = self
            .shards
            .iter()
            .map(|s| s.read().stats().chunks)
            .collect();
        let total: usize = counts.iter().sum();
        if total == 0 {
            return BitFlipOutcome::NoChunks;
        }
        let mut target = (nth_chunk % total as u64) as usize;
        for (i, (shard, &count)) in self.shards.iter().zip(&counts).enumerate() {
            if target >= count {
                target -= count;
                continue;
            }
            let outcome = shard.write().flip_chunk_bit(target as u64, bit);
            if let BitFlipOutcome::Quarantined { points } = outcome {
                if let Some(o) = self.obs_of(i) {
                    o.quarantined_points.add(u64::from(points));
                }
            }
            return outcome;
        }
        BitFlipOutcome::NoChunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Aggregator;
    use ctt_core::time::Span;

    fn dp(metric: &str, device: &str, t: i64, v: f64) -> DataPoint {
        DataPoint::new(
            metric,
            vec![("device".to_string(), device.to_string())],
            Timestamp(t),
            v,
        )
        .unwrap()
    }

    fn fill(db: &ShardedTsdb, devices: u32, points: i64) {
        let batch: Vec<DataPoint> = (0..devices)
            .flat_map(|d| {
                (0..points)
                    .map(move |i| dp("m", &format!("n{d}"), i * 300, f64::from(d) + i as f64))
            })
            .collect();
        assert_eq!(db.put_batch(&batch), u64::from(devices) * points as u64);
    }

    #[test]
    fn shards_partition_series_not_points() {
        let db = ShardedTsdb::new(4);
        fill(&db, 16, 40);
        let st = db.stats();
        assert_eq!(st.series, 16);
        assert_eq!(st.points, 16 * 40);
        // Every series lives in exactly one shard.
        let per_shard = db.per_shard_stats();
        assert_eq!(per_shard.iter().map(|s| s.series).sum::<usize>(), 16);
        // 16 hashed series across 4 shards: expect more than one shard used.
        assert!(
            per_shard.iter().filter(|s| s.series > 0).count() > 1,
            "hash failed to spread series: {per_shard:?}"
        );
    }

    #[test]
    fn sharded_query_matches_flat_store() {
        let sharded = ShardedTsdb::with_chunk_size(4, 16);
        let mut flat = Tsdb::with_chunk_size(16);
        for d in 0..6u32 {
            for i in 0..100i64 {
                let p = dp(
                    "m",
                    &format!("n{d}"),
                    i * 300,
                    f64::from(d) * 10.0 + i as f64,
                );
                sharded.put(&p);
                flat.put(&p);
            }
        }
        for q in [
            Query::range("m", Timestamp(0), Timestamp(100 * 300)),
            Query::range("m", Timestamp(0), Timestamp(100 * 300)).group_by("device"),
            Query::range("m", Timestamp(5_000), Timestamp(20_000)).aggregate(Aggregator::P95),
            Query::range("m", Timestamp(0), Timestamp(100 * 300))
                .aggregate(Aggregator::Sum)
                .downsample(crate::query::Downsample {
                    interval: Span::minutes(30),
                    aggregator: Aggregator::Avg,
                    fill: crate::query::FillPolicy::None,
                }),
        ] {
            let a = sharded.execute(&q).unwrap();
            let b = crate::query::execute(&flat, &q).unwrap();
            assert_eq!(a, b, "sharded vs flat diverged on {q:?}");
        }
    }

    #[test]
    fn read_series_routes_to_owning_shard() {
        let db = ShardedTsdb::new(8);
        fill(&db, 8, 10);
        let tags: TagSet = [("device".to_string(), "n3".to_string())].into();
        let (pts, q) = db
            .read_series("m", &tags, Timestamp(0), Timestamp(10_000))
            .expect("series exists");
        assert_eq!(pts.len(), 10);
        assert_eq!(q, QuarantineReport::default());
        assert!(db
            .read_series("m", &TagSet::new(), Timestamp(0), Timestamp(1))
            .is_none());
    }

    #[test]
    fn evict_before_sums_across_shards() {
        let db = ShardedTsdb::with_chunk_size(4, 8);
        fill(&db, 8, 50);
        let dropped = db.evict_before(Timestamp(25 * 300)).unwrap();
        assert_eq!(dropped, 8 * 25);
        assert_eq!(db.stats().points, 8 * 25);
    }

    #[test]
    fn flip_chunk_bit_walks_global_chunk_index() {
        let db = ShardedTsdb::with_chunk_size(4, 8);
        assert_eq!(db.flip_chunk_bit(0, 0), BitFlipOutcome::NoChunks);
        fill(&db, 8, 24);
        db.seal_all();
        let chunks = db.stats().chunks as u64;
        assert!(chunks >= 8);
        for nth in 0..chunks {
            assert_ne!(db.flip_chunk_bit(nth, 1), BitFlipOutcome::NoChunks);
        }
        // Conservation: the scan accounts for every point ever written.
        let scan = db.integrity_scan();
        assert_eq!(
            scan.readable_points + scan.quarantined_points,
            db.stats().points
        );
    }

    #[test]
    fn metrics_merged_and_deduped() {
        let db = ShardedTsdb::new(4);
        for d in 0..8u32 {
            db.put(&dp("b.metric", &format!("n{d}"), 0, 1.0));
            db.put(&dp("a.metric", &format!("n{d}"), 0, 1.0));
        }
        assert_eq!(db.metrics(), vec!["a.metric", "b.metric"]);
    }

    #[test]
    fn attached_registry_counts_per_shard_activity() {
        let registry = Registry::new();
        let mut db = ShardedTsdb::with_chunk_size(2, 8);
        db.attach_registry(&registry);
        fill(&db, 4, 10);
        db.execute(&Query::range("m", Timestamp(0), Timestamp(10_000)))
            .unwrap();
        let snap = registry.snapshot(Timestamp(0));
        // Every put lands in exactly one shard's counter.
        let puts = snap.value("tsdb.shard0.puts").unwrap_or(0)
            + snap.value("tsdb.shard1.puts").unwrap_or(0);
        assert_eq!(puts, 40);
        // A fan-out query touches every shard once.
        assert_eq!(snap.value("tsdb.shard0.queries"), Some(1));
        assert_eq!(snap.value("tsdb.shard1.queries"), Some(1));
        // Quarantine counters track points made unreadable by bit flips.
        db.seal_all();
        let mut flipped = 0i128;
        for nth in 0..db.stats().chunks as u64 {
            if let BitFlipOutcome::Quarantined { points } = db.flip_chunk_bit(nth, 1) {
                flipped += i128::from(points);
            }
        }
        let snap = registry.snapshot(Timestamp(0));
        let quarantined = snap.value("tsdb.shard0.quarantined_points").unwrap_or(0)
            + snap.value("tsdb.shard1.quarantined_points").unwrap_or(0);
        assert_eq!(quarantined, flipped);
    }

    #[test]
    fn one_shard_degenerates_to_flat_store() {
        let db = ShardedTsdb::new(1);
        assert_eq!(db.shard_count(), 1);
        fill(&db, 3, 10);
        assert_eq!(db.stats().series, 3);
        let db = ShardedTsdb::new(0); // clamped
        assert_eq!(db.shard_count(), 1);
    }
}
