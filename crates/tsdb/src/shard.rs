//! Sharded storage: N independent [`Tsdb`] partitions behind `RwLock`s.
//!
//! Series are partitioned by an FNV-1a hash of the canonical series key
//! (`metric{k1=v1,...}`), so every series lives in exactly one shard and a
//! point's destination is a pure function of its identity — stable across
//! runs, process restarts, and shard counts that divide the hash space the
//! same way. Each shard owns its own intern map, sealed chunks, and open
//! buffers; writers contend only within a shard, and a batched write locks
//! each touched shard once.
//!
//! Queries run in two phases (see [`crate::query`]): every shard *collects*
//! per-series points under a read lock, the collections are merged in shard
//! index order, and cross-series aggregation happens once over the merged
//! set. Aggregating per shard and then combining would be wrong (an average
//! of averages weights shards, not points) — the two-phase split is what
//! makes an N-shard store return byte-identical query results to a 1-shard
//! store.
//!
//! The serving stack on top of that ([`ServePolicy`]):
//!
//! * **Epochs** — every shard carries an atomic epoch counter bumped by
//!   each mutation; the [`QueryCache`] validates against them, so
//!   invalidation is deterministic (no wall clock, lint R5).
//! * **Seal-aware cache** — finalized results are reused while *all*
//!   epochs match; per-shard phase-1 collections are reused while *their*
//!   shard's epoch matches, so sustained ingest into one shard only forces
//!   re-collection of that shard.
//! * **Rollups + block index** — inside each shard, downsample queries are
//!   answered from seal-time rollups and non-overlapping chunks are
//!   skipped via the block index (see [`crate::rollup`], [`crate::store`]).
//! * **Parallel collect** — on multi-core hosts, phase-1 runs on the
//!   shared [`OrderedPool`]; results merge in submission (= shard) order,
//!   so parallelism never changes bytes.

use crate::cache::{query_signature, CacheStats, QueryCache};
use crate::error::TsdbError;
use crate::model::{series_key, DataPoint, TagSet};
use crate::query::{collect_groups, finalize_groups, GroupCollection, Query, QueryResult};
use crate::store::{
    BitFlipOutcome, IntegrityReport, QuarantineReport, ScanCounts, StoreStats, Tsdb,
    DEFAULT_CHUNK_SIZE, DEFAULT_ROLLUP_INTERVAL,
};
use ctt_core::pool::{worker_width, OrderedPool};
use ctt_core::time::{Span, Timestamp};
use ctt_obs::{Counter, Registry};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Default shard count: matches the ingest worker pool's default width.
pub const DEFAULT_SHARDS: usize = 4;

/// FNV-1a 64-bit hash — deterministic (unlike `std`'s `RandomState`), so
/// shard assignment is replay-stable across processes and runs.
fn fnv1a(key: &str) -> u64 {
    fnv1a_step(0xcbf2_9ce4_8422_2325, key.as_bytes())
}

/// Fold more bytes into a running FNV-1a 64-bit state.
#[inline]
fn fnv1a_step(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64-bit hash of the canonical series key (`metric{k1=v1,...}`),
/// folded incrementally over the key's exact byte sequence — no key string
/// is allocated. Equal to hashing [`series_key`]'s output (pinned by a
/// unit test), so routing by this hash agrees with
/// [`ShardedTsdb::shard_of_key`]. This is the ingest runtime's submit-path
/// router: one hash, zero allocations, per point.
#[inline]
pub fn series_key_hash(metric: &str, tags: &TagSet) -> u64 {
    let mut h = fnv1a_step(0xcbf2_9ce4_8422_2325, metric.as_bytes());
    h = fnv1a_step(h, b"{");
    for (i, (k, v)) in tags.iter().enumerate() {
        if i > 0 {
            h = fnv1a_step(h, b",");
        }
        h = fnv1a_step(h, k.as_bytes());
        h = fnv1a_step(h, b"=");
        h = fnv1a_step(h, v.as_bytes());
    }
    fnv1a_step(h, b"}")
}

/// Which serving layers a query may use. The default ([`ServePolicy::full`])
/// is the fast path; [`ServePolicy::raw`] forces the reference raw-decode
/// path the equivalence suite compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServePolicy {
    /// Consult and populate the seal-aware query cache.
    pub cache: bool,
    /// Serve downsample buckets from seal-time rollups where provable.
    pub rollups: bool,
    /// Collect shards on the worker pool when the host has spare cores.
    pub parallel: bool,
}

impl ServePolicy {
    /// Every serving layer enabled.
    pub fn full() -> Self {
        ServePolicy {
            cache: true,
            rollups: true,
            parallel: true,
        }
    }

    /// Reference path: sequential, uncached, raw chunk decode only.
    pub fn raw() -> Self {
        ServePolicy {
            cache: false,
            rollups: false,
            parallel: false,
        }
    }
}

impl Default for ServePolicy {
    fn default() -> Self {
        ServePolicy::full()
    }
}

/// Per-shard observability counters, registered as `tsdb.shard<i>.*`.
/// Detached (uncounted into any registry) until
/// [`ShardedTsdb::attach_registry`] is called; counter handles are atomics,
/// so shard instrumentation never takes the registry lock on the data path.
#[derive(Debug, Clone, Default)]
struct ShardObs {
    puts: Counter,
    queries: Counter,
    quarantined_points: Counter,
    blocks_skipped: Counter,
    chunks_decoded: Counter,
    rollup_buckets: Counter,
    raw_buckets: Counter,
}

impl ShardObs {
    fn record_scan(&self, counts: ScanCounts) {
        self.blocks_skipped.add(counts.chunks_skipped);
        self.chunks_decoded.add(counts.chunks_decoded);
        self.rollup_buckets.add(counts.rollup_buckets);
        self.raw_buckets.add(counts.raw_buckets);
    }
}

type ShardCollections = BTreeMap<TagSet, GroupCollection>;
type PoolJob = (Arc<RwLock<Tsdb>>, Arc<Query>, bool);
type PoolOut = Result<ShardCollections, TsdbError>;

/// A time-series database partitioned across N single-owner shards.
#[derive(Debug)]
pub struct ShardedTsdb {
    shards: Vec<Arc<RwLock<Tsdb>>>,
    /// Per-shard mutation epochs: bumped by every write-path mutation,
    /// read (lock-free) by the cache validation.
    epochs: Vec<Arc<AtomicU64>>,
    obs: Vec<ShardObs>,
    cache: QueryCache,
    /// Lazily-built phase-1 collection pool; `None` once initialized on a
    /// host where `worker_width` resolves to a single worker (parallel
    /// collect would only add channel overhead there).
    pool: OnceLock<Option<OrderedPool<PoolJob, PoolOut>>>,
}

impl Default for ShardedTsdb {
    fn default() -> Self {
        ShardedTsdb::new(DEFAULT_SHARDS)
    }
}

impl ShardedTsdb {
    /// New store with `shards` partitions (clamped to at least 1) and the
    /// default points-per-chunk.
    pub fn new(shards: usize) -> Self {
        ShardedTsdb::with_chunk_size(shards, DEFAULT_CHUNK_SIZE)
    }

    /// New store with a custom points-per-chunk in every shard.
    pub fn with_chunk_size(shards: usize, chunk_size: usize) -> Self {
        ShardedTsdb::with_layout(shards, chunk_size, DEFAULT_ROLLUP_INTERVAL)
    }

    /// New store with custom points-per-chunk and rollup interval in every
    /// shard (see [`Tsdb::with_layout`]).
    pub fn with_layout(shards: usize, chunk_size: usize, rollup_interval: Span) -> Self {
        let n = shards.max(1);
        ShardedTsdb {
            shards: (0..n)
                .map(|_| Arc::new(RwLock::new(Tsdb::with_layout(chunk_size, rollup_interval))))
                .collect(),
            epochs: (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect(),
            obs: vec![ShardObs::default(); n],
            cache: QueryCache::default(),
            pool: OnceLock::new(),
        }
    }

    /// Register per-shard put/query/quarantine/scan counters (as
    /// `tsdb.shard<i>.*`) and the cache counters (`tsdb.cache.*`) into
    /// `registry`. Counts accumulated before attachment are discarded —
    /// attach before ingest starts.
    pub fn attach_registry(&mut self, registry: &Registry) {
        self.obs = (0..self.shards.len())
            .map(|i| ShardObs {
                puts: registry.counter(&format!("tsdb.shard{i}.puts")),
                queries: registry.counter(&format!("tsdb.shard{i}.queries")),
                quarantined_points: registry.counter(&format!("tsdb.shard{i}.quarantined_points")),
                blocks_skipped: registry.counter(&format!("tsdb.shard{i}.blocks_skipped")),
                chunks_decoded: registry.counter(&format!("tsdb.shard{i}.chunks_decoded")),
                rollup_buckets: registry.counter(&format!("tsdb.shard{i}.rollup_buckets")),
                raw_buckets: registry.counter(&format!("tsdb.shard{i}.raw_buckets")),
            })
            .collect();
        self.cache.attach_registry(registry);
    }

    fn obs_of(&self, shard: usize) -> Option<&ShardObs> {
        self.obs.get(shard)
    }

    /// Bump a shard's mutation epoch (Release: pairs with the Acquire load
    /// in cache validation).
    fn bump_epoch(&self, shard: usize) {
        if let Some(e) = self.epochs.get(shard) {
            e.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Current mutation epoch of one shard (0 for out-of-range indices).
    pub fn epoch(&self, shard: usize) -> u64 {
        self.epochs
            .get(shard)
            .map_or(0, |e| e.load(Ordering::Acquire))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index that owns a canonical series key.
    pub fn shard_of_key(&self, key: &str) -> usize {
        (fnv1a(key) % self.shards.len() as u64) as usize
    }

    /// The shard index that owns a precomputed [`series_key_hash`]. Agrees
    /// with [`ShardedTsdb::shard_of_key`] for the same metric + tags.
    pub fn shard_of_hash(&self, hash: u64) -> usize {
        (hash % self.shards.len() as u64) as usize
    }

    /// A standalone write handle for one shard, for single-writer ingest
    /// runtimes: it holds its own `Arc`s to the shard's store and epoch
    /// (plus a clone of the shard's `puts` counter), so a writer thread can
    /// own it without borrowing the `ShardedTsdb`. Writes through the
    /// handle bump the same epoch the query cache validates against, so
    /// serving stays correct regardless of which path wrote. `None` for
    /// out-of-range indices.
    ///
    /// Call after [`ShardedTsdb::attach_registry`]: the handle captures the
    /// shard's current counter, and attaching replaces counters.
    pub fn writer(&self, shard: usize) -> Option<ShardWriter> {
        Some(ShardWriter {
            store: Arc::clone(self.shards.get(shard)?),
            epoch: Arc::clone(self.epochs.get(shard)?),
            puts: self.obs.get(shard)?.puts.clone(),
            shard,
        })
    }

    /// Cache hit/miss/eviction counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drop every cached query entry (benchmark hygiene).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Insert one data point. Prefer [`ShardedTsdb::put_batch`] on the hot
    /// path — it locks each touched shard once per batch, not per point.
    pub fn put(&self, point: &DataPoint) {
        let shard = self.shard_of_key(&point.series_key());
        if let Some(s) = self.shards.get(shard) {
            s.write().put(point);
            self.bump_epoch(shard);
            if let Some(o) = self.obs_of(shard) {
                o.puts.inc();
            }
        }
    }

    /// Batched ingest: bucket points by owning shard, then lock each
    /// touched shard exactly once. Untouched shards keep their epoch, so
    /// their cached collections stay valid. Returns points written.
    pub fn put_batch(&self, points: &[DataPoint]) -> u64 {
        let mut buckets: Vec<Vec<&DataPoint>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for p in points {
            let shard = self.shard_of_key(&p.series_key());
            if let Some(bucket) = buckets.get_mut(shard) {
                bucket.push(p);
            }
        }
        let mut written = 0u64;
        for (i, (shard, bucket)) in self.shards.iter().zip(&buckets).enumerate() {
            if bucket.is_empty() {
                continue;
            }
            {
                let mut guard = shard.write();
                for p in bucket {
                    guard.put(p);
                    written += 1;
                }
            }
            self.bump_epoch(i);
            if let Some(o) = self.obs_of(i) {
                o.puts.add(bucket.len() as u64);
            }
        }
        written
    }

    /// The shared phase-1 collection pool, built on first use; `None` on
    /// single-worker hosts (sequential collect is strictly cheaper there).
    fn pool(&self) -> Option<&OrderedPool<PoolJob, PoolOut>> {
        self.pool
            .get_or_init(|| {
                let width = worker_width(1, self.shards.len());
                (width > 1).then(|| {
                    OrderedPool::new(width, |(db, q, rollups): PoolJob| {
                        collect_groups(&db.read(), &q, rollups)
                    })
                })
            })
            .as_ref()
    }

    fn collect_sequential(
        &self,
        missing: &[usize],
        q: &Query,
        rollups: bool,
    ) -> Vec<(usize, PoolOut)> {
        missing
            .iter()
            .filter_map(|&i| {
                self.shards
                    .get(i)
                    .map(|s| (i, collect_groups(&s.read(), q, rollups)))
            })
            .collect()
    }

    /// Execute a query with the full serving stack (cache + rollups +
    /// parallel collect). Byte-identical to running the same query against
    /// a single [`Tsdb`] holding all the data.
    pub fn execute(&self, q: &Query) -> Result<Vec<QueryResult>, TsdbError> {
        self.execute_with(q, ServePolicy::full())
    }

    /// Execute a query with an explicit [`ServePolicy`]. All policies
    /// return byte-identical results — the policy only chooses how much
    /// work is skipped getting there.
    pub fn execute_with(
        &self,
        q: &Query,
        policy: ServePolicy,
    ) -> Result<Vec<QueryResult>, TsdbError> {
        // Count the query on every shard up front: cache-served queries
        // are still queries, and miss/hit ratios depend on this base rate.
        for i in 0..self.shards.len() {
            if let Some(o) = self.obs_of(i) {
                o.queries.inc();
            }
        }
        // Epochs are read *before* collecting: a write racing with the
        // collection can only make the stored entry look older than its
        // data, so a stale entry is never served after the epoch bump.
        let epochs: Vec<u64> = self
            .epochs
            .iter()
            .map(|e| e.load(Ordering::Acquire))
            .collect();
        let sig = if policy.cache {
            Some(query_signature(q))
        } else {
            None
        };
        if let Some(sig) = &sig {
            if let Some(results) = self.cache.get_results(sig, &epochs) {
                return Ok(results);
            }
        }
        // Per-shard phase-1 collections: cache-valid shards are reused, the
        // rest are collected under their read lock (in parallel when the
        // host allows). Cache locks and shard locks are never held together.
        let n = self.shards.len();
        let mut collections: Vec<Option<ShardCollections>> = (0..n).map(|_| None).collect();
        if let Some(sig) = &sig {
            for (i, slot) in collections.iter_mut().enumerate() {
                *slot = self
                    .cache
                    .get_collection(sig, i, epochs.get(i).copied().unwrap_or(0));
            }
        }
        let missing: Vec<usize> = collections
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| i)
            .collect();
        let fresh: Vec<(usize, PoolOut)> = match self.pool() {
            Some(pool) if policy.parallel && missing.len() > 1 => {
                let qa = Arc::new(q.clone());
                let jobs: Vec<PoolJob> = missing
                    .iter()
                    .filter_map(|&i| {
                        self.shards
                            .get(i)
                            .map(|s| (Arc::clone(s), Arc::clone(&qa), policy.rollups))
                    })
                    .collect();
                missing.iter().copied().zip(pool.map(jobs)).collect()
            }
            _ => self.collect_sequential(&missing, q, policy.rollups),
        };
        for (i, result) in fresh {
            let collected = result?;
            if let Some(o) = self.obs_of(i) {
                let mut counts = ScanCounts::default();
                for c in collected.values() {
                    counts.merge(c.counts);
                }
                o.record_scan(counts);
            }
            if let Some(sig) = &sig {
                self.cache.put_collection(
                    sig,
                    i,
                    epochs.get(i).copied().unwrap_or(0),
                    collected.clone(),
                );
            }
            if let Some(slot) = collections.get_mut(i) {
                *slot = Some(collected);
            }
        }
        // Merge in shard index order; finalize once over the merged set.
        let mut merged: ShardCollections = BTreeMap::new();
        for coll in collections.into_iter().flatten() {
            for (group, c) in coll {
                merged.entry(group).or_default().merge(c);
            }
        }
        let results = finalize_groups(merged, q);
        if let Some(sig) = sig {
            self.cache.put_results(sig, epochs, results.clone());
        }
        Ok(results)
    }

    /// Raw points of one exactly-identified series in `[start, end)`, with
    /// the quarantine report. `None` when the series is unknown. Routes
    /// directly to the owning shard — a point lookup touches one lock.
    pub fn read_series(
        &self,
        metric: &str,
        tags: &TagSet,
        start: Timestamp,
        end: Timestamp,
    ) -> Option<(Vec<(Timestamp, f64)>, QuarantineReport)> {
        let shard = self.shard_of_key(&series_key(metric, tags));
        // Count before the lookup resolves: unknown-series probes are real
        // query traffic, and hiding them skews every hit/miss ratio built
        // on this counter.
        if let Some(o) = self.obs_of(shard) {
            o.queries.inc();
        }
        let guard = self.shards.get(shard)?.read();
        let id = guard.series_id(metric, tags)?;
        guard.read_with_quarantine(id, start, end).ok()
    }

    /// Storage statistics summed across shards.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for s in &self.shards {
            let st = s.read().stats();
            total.series += st.series;
            total.points += st.points;
            total.chunks += st.chunks;
            total.bytes += st.bytes;
            total.rollup_bytes += st.rollup_bytes;
        }
        total
    }

    /// Per-shard statistics, in shard order (balance inspection).
    pub fn per_shard_stats(&self) -> Vec<StoreStats> {
        self.shards.iter().map(|s| s.read().stats()).collect()
    }

    /// All distinct metric names across shards (sorted, deduplicated).
    pub fn metrics(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.shards {
            let guard = s.read();
            out.extend(guard.metrics().into_iter().map(str::to_string));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Force-seal all open buffers in every shard.
    pub fn seal_all(&self) {
        for (i, s) in self.shards.iter().enumerate() {
            s.write().seal_all();
            self.bump_epoch(i);
        }
    }

    /// Retention across all shards: drop data strictly before `cutoff`.
    /// Returns total points dropped; if any shard hits a corrupt straddling
    /// chunk the first error is reported after every shard has been swept
    /// (no shard is skipped because an earlier one was corrupt).
    pub fn evict_before(&self, cutoff: Timestamp) -> Result<u64, TsdbError> {
        let mut dropped = 0u64;
        let mut first_err = None;
        for (i, s) in self.shards.iter().enumerate() {
            let swept = s.write().evict_before(cutoff);
            self.bump_epoch(i);
            match swept {
                Ok(n) => dropped += n,
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(dropped),
        }
    }

    /// Trial-decode every sealed chunk in every shard. The conservation
    /// invariant `readable_points + quarantined_points == stats().points`
    /// holds across the whole sharded store, so the chaos loss ledger
    /// balances exactly as it did against the flat store.
    pub fn integrity_scan(&self) -> IntegrityReport {
        let mut total = IntegrityReport::default();
        for s in &self.shards {
            let r = s.read().integrity_scan();
            total.readable_points += r.readable_points;
            total.quarantined_chunks += r.quarantined_chunks;
            total.quarantined_points += r.quarantined_points;
        }
        total
    }

    /// Fault injection: flip one bit in the `nth` sealed chunk, counting
    /// chunks across shards in shard order (modulo the global total), and
    /// report the outcome. Deterministic for a fixed ingest history.
    pub fn flip_chunk_bit(&self, nth_chunk: u64, bit: u64) -> BitFlipOutcome {
        let counts: Vec<usize> = self
            .shards
            .iter()
            .map(|s| s.read().stats().chunks)
            .collect();
        let total: usize = counts.iter().sum();
        if total == 0 {
            return BitFlipOutcome::NoChunks;
        }
        let mut target = (nth_chunk % total as u64) as usize;
        for (i, (shard, &count)) in self.shards.iter().zip(&counts).enumerate() {
            if target >= count {
                target -= count;
                continue;
            }
            let outcome = shard.write().flip_chunk_bit(target as u64, bit);
            // Any successful flip mutated stored bytes (and dropped the
            // chunk's rollups): cached answers over them are invalid.
            if !matches!(
                outcome,
                BitFlipOutcome::NoChunks | BitFlipOutcome::BitOutOfRange
            ) {
                self.bump_epoch(i);
            }
            if let BitFlipOutcome::Quarantined { points } = outcome {
                if let Some(o) = self.obs_of(i) {
                    o.quarantined_points.add(u64::from(points));
                }
            }
            return outcome;
        }
        BitFlipOutcome::NoChunks
    }
}

/// A write handle bound to one shard of a [`ShardedTsdb`] (see
/// [`ShardedTsdb::writer`]). Cheap to move across threads; the ingest
/// runtime gives each shard exactly one, making that thread the shard's
/// single writer.
#[derive(Debug, Clone)]
pub struct ShardWriter {
    store: Arc<RwLock<Tsdb>>,
    epoch: Arc<AtomicU64>,
    puts: Counter,
    shard: usize,
}

impl ShardWriter {
    /// The shard index this handle writes.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Open a write session: the shard lock is taken once and held until
    /// the session drops, which is when the epoch bump and put-counter
    /// update publish everything the session wrote. Readers (queries, the
    /// cache) either see the shard wholly before or wholly after the
    /// session — never a half-applied batch.
    pub fn session(&self) -> ShardWriteSession<'_> {
        ShardWriteSession {
            guard: self.store.write(),
            epoch: &self.epoch,
            puts: &self.puts,
            written: 0,
        }
    }
}

/// One atomic batch of writes against a single shard, created by
/// [`ShardWriter::session`]. Dropping the session publishes: the shard
/// epoch is bumped (once, iff anything was written) and the shard's `puts`
/// counter advances by the points written — the same observable effects
/// per batch as [`ShardedTsdb::put_batch`] on that shard.
pub struct ShardWriteSession<'a> {
    guard: parking_lot::RwLockWriteGuard<'a, Tsdb>,
    epoch: &'a AtomicU64,
    puts: &'a Counter,
    written: u64,
}

impl std::fmt::Debug for ShardWriteSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardWriteSession")
            .field("written", &self.written)
            .finish_non_exhaustive()
    }
}

impl ShardWriteSession<'_> {
    /// Intern a series in this shard (see [`Tsdb::intern`]). The id is
    /// stable for the shard's lifetime, so callers may cache it.
    pub fn intern(&mut self, metric: &str, tags: &TagSet) -> crate::store::SeriesId {
        self.guard.intern(metric, tags)
    }

    /// Append a time-ordered-as-received run of points to an interned
    /// series, sealing at thresholds exactly as per-point `put` would.
    pub fn append_run(&mut self, id: crate::store::SeriesId, pts: &[(Timestamp, f64)]) {
        self.guard.append_run(id, pts);
        self.written += pts.len() as u64;
    }

    /// Monotone compressed-bytes total of this shard (for encoded-bytes
    /// deltas without re-taking the lock).
    pub fn encoded_bytes_total(&self) -> u64 {
        self.guard.encoded_bytes_total()
    }
}

impl Drop for ShardWriteSession<'_> {
    fn drop(&mut self) {
        if self.written > 0 {
            // Release-ordered bump after the writes, matching
            // `ShardedTsdb::bump_epoch`: cache validation that loads the
            // new epoch observes the session's writes.
            self.epoch.fetch_add(1, Ordering::AcqRel);
            self.puts.add(self.written);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Aggregator;
    use ctt_core::time::Span;

    fn dp(metric: &str, device: &str, t: i64, v: f64) -> DataPoint {
        DataPoint::new(
            metric,
            vec![("device".to_string(), device.to_string())],
            Timestamp(t),
            v,
        )
        .unwrap()
    }

    fn fill(db: &ShardedTsdb, devices: u32, points: i64) {
        let batch: Vec<DataPoint> = (0..devices)
            .flat_map(|d| {
                (0..points)
                    .map(move |i| dp("m", &format!("n{d}"), i * 300, f64::from(d) + i as f64))
            })
            .collect();
        assert_eq!(db.put_batch(&batch), u64::from(devices) * points as u64);
    }

    #[test]
    fn shards_partition_series_not_points() {
        let db = ShardedTsdb::new(4);
        fill(&db, 16, 40);
        let st = db.stats();
        assert_eq!(st.series, 16);
        assert_eq!(st.points, 16 * 40);
        // Every series lives in exactly one shard.
        let per_shard = db.per_shard_stats();
        assert_eq!(per_shard.iter().map(|s| s.series).sum::<usize>(), 16);
        // 16 hashed series across 4 shards: expect more than one shard used.
        assert!(
            per_shard.iter().filter(|s| s.series > 0).count() > 1,
            "hash failed to spread series: {per_shard:?}"
        );
    }

    #[test]
    fn sharded_query_matches_flat_store() {
        let sharded = ShardedTsdb::with_chunk_size(4, 16);
        let mut flat = Tsdb::with_chunk_size(16);
        for d in 0..6u32 {
            for i in 0..100i64 {
                let p = dp(
                    "m",
                    &format!("n{d}"),
                    i * 300,
                    f64::from(d) * 10.0 + i as f64,
                );
                sharded.put(&p);
                flat.put(&p);
            }
        }
        for q in [
            Query::range("m", Timestamp(0), Timestamp(100 * 300)),
            Query::range("m", Timestamp(0), Timestamp(100 * 300)).group_by("device"),
            Query::range("m", Timestamp(5_000), Timestamp(20_000)).aggregate(Aggregator::P95),
            Query::range("m", Timestamp(0), Timestamp(100 * 300))
                .aggregate(Aggregator::Sum)
                .downsample(crate::query::Downsample {
                    interval: Span::minutes(30),
                    aggregator: Aggregator::Avg,
                    fill: crate::query::FillPolicy::None,
                }),
        ] {
            let a = sharded.execute(&q).unwrap();
            let b = crate::query::execute(&flat, &q).unwrap();
            assert_eq!(a, b, "sharded vs flat diverged on {q:?}");
        }
    }

    #[test]
    fn serve_policies_agree_byte_for_byte() {
        let db = ShardedTsdb::with_layout(4, 16, Span::minutes(30));
        fill(&db, 6, 100);
        db.seal_all();
        let queries = [
            Query::range("m", Timestamp(0), Timestamp(100 * 300)),
            Query::range("m", Timestamp(0), Timestamp(100 * 300))
                .group_by("device")
                .downsample(crate::query::Downsample {
                    interval: Span::minutes(30),
                    aggregator: Aggregator::Avg,
                    fill: crate::query::FillPolicy::None,
                }),
            Query::range("m", Timestamp(3000), Timestamp(21_000)).downsample(
                crate::query::Downsample {
                    interval: Span::minutes(30),
                    aggregator: Aggregator::Max,
                    fill: crate::query::FillPolicy::Previous,
                },
            ),
        ];
        for q in &queries {
            let raw = db.execute_with(q, ServePolicy::raw()).unwrap();
            let full = db.execute_with(q, ServePolicy::full()).unwrap();
            assert_eq!(full, raw, "serving diverged on {q:?}");
            // Second run: served from the result cache, still identical.
            let cached = db.execute_with(q, ServePolicy::full()).unwrap();
            assert_eq!(cached, raw, "cache diverged on {q:?}");
        }
        assert!(db.cache_stats().hits >= queries.len() as u64);
    }

    #[test]
    fn cache_invalidates_on_mutation() {
        let db = ShardedTsdb::with_chunk_size(2, 8);
        fill(&db, 4, 10);
        let q = Query::range("m", Timestamp(0), Timestamp(10_000));
        let before = db.execute(&q).unwrap();
        assert_eq!(db.execute(&q).unwrap(), before, "cached repeat");
        // A new point must invalidate: the cached answer is stale.
        db.put(&dp("m", "n0", 9000, 1234.5));
        let after = db.execute(&q).unwrap();
        assert_ne!(after, before, "epoch bump must invalidate the cache");
        assert_eq!(
            after,
            db.execute_with(&q, ServePolicy::raw()).unwrap(),
            "post-invalidation answer matches raw"
        );
    }

    #[test]
    fn epochs_bump_only_touched_shards() {
        let db = ShardedTsdb::new(4);
        let before: Vec<u64> = (0..4).map(|i| db.epoch(i)).collect();
        let p = dp("m", "n0", 0, 1.0);
        let owner = db.shard_of_key(&p.series_key());
        db.put(&p);
        for (i, &was) in before.iter().enumerate() {
            if i == owner {
                assert_eq!(db.epoch(i), was + 1, "owner shard bumps");
            } else {
                assert_eq!(db.epoch(i), was, "other shards untouched");
            }
        }
    }

    #[test]
    fn read_series_routes_to_owning_shard() {
        let db = ShardedTsdb::new(8);
        fill(&db, 8, 10);
        let tags: TagSet = [("device".to_string(), "n3".to_string())].into();
        let (pts, q) = db
            .read_series("m", &tags, Timestamp(0), Timestamp(10_000))
            .expect("series exists");
        assert_eq!(pts.len(), 10);
        assert_eq!(q, QuarantineReport::default());
        assert!(db
            .read_series("m", &TagSet::new(), Timestamp(0), Timestamp(1))
            .is_none());
    }

    #[test]
    fn unknown_series_lookup_is_counted() {
        let registry = Registry::new();
        let mut db = ShardedTsdb::new(2);
        db.attach_registry(&registry);
        let tags: TagSet = [("device".to_string(), "ghost".to_string())].into();
        let shard = db.shard_of_key(&series_key("m", &tags));
        assert!(db
            .read_series("m", &tags, Timestamp(0), Timestamp(1))
            .is_none());
        let snap = registry.snapshot(Timestamp(0));
        assert_eq!(
            snap.value(&format!("tsdb.shard{shard}.queries")),
            Some(1),
            "a miss is still a query: it must appear in the snapshot"
        );
    }

    #[test]
    fn evict_before_sums_across_shards() {
        let db = ShardedTsdb::with_chunk_size(4, 8);
        fill(&db, 8, 50);
        let dropped = db.evict_before(Timestamp(25 * 300)).unwrap();
        assert_eq!(dropped, 8 * 25);
        assert_eq!(db.stats().points, 8 * 25);
    }

    #[test]
    fn flip_chunk_bit_walks_global_chunk_index() {
        let db = ShardedTsdb::with_chunk_size(4, 8);
        assert_eq!(db.flip_chunk_bit(0, 0), BitFlipOutcome::NoChunks);
        fill(&db, 8, 24);
        db.seal_all();
        let chunks = db.stats().chunks as u64;
        assert!(chunks >= 8);
        for nth in 0..chunks {
            assert_ne!(db.flip_chunk_bit(nth, 1), BitFlipOutcome::NoChunks);
        }
        // Conservation: the scan accounts for every point ever written.
        let scan = db.integrity_scan();
        assert_eq!(
            scan.readable_points + scan.quarantined_points,
            db.stats().points
        );
    }

    #[test]
    fn corruption_invalidates_cached_answers() {
        let db = ShardedTsdb::with_chunk_size(2, 8);
        fill(&db, 4, 24);
        db.seal_all();
        let q = Query::range("m", Timestamp(0), Timestamp(24 * 300));
        let before = db.execute(&q).unwrap();
        // Corrupt until a chunk actually quarantines.
        let mut bit = 1u64;
        loop {
            match db.flip_chunk_bit(1, bit) {
                BitFlipOutcome::Quarantined { .. } => break,
                _ => bit += 7,
            }
        }
        let after = db.execute(&q).unwrap();
        assert_ne!(after, before, "quarantine must not serve stale cache");
        assert_eq!(after, db.execute_with(&q, ServePolicy::raw()).unwrap());
    }

    #[test]
    fn metrics_merged_and_deduped() {
        let db = ShardedTsdb::new(4);
        for d in 0..8u32 {
            db.put(&dp("b.metric", &format!("n{d}"), 0, 1.0));
            db.put(&dp("a.metric", &format!("n{d}"), 0, 1.0));
        }
        assert_eq!(db.metrics(), vec!["a.metric", "b.metric"]);
    }

    #[test]
    fn attached_registry_counts_per_shard_activity() {
        let registry = Registry::new();
        let mut db = ShardedTsdb::with_chunk_size(2, 8);
        db.attach_registry(&registry);
        fill(&db, 4, 10);
        db.execute(&Query::range("m", Timestamp(0), Timestamp(10_000)))
            .unwrap();
        let snap = registry.snapshot(Timestamp(0));
        // Every put lands in exactly one shard's counter.
        let puts = snap.value("tsdb.shard0.puts").unwrap_or(0)
            + snap.value("tsdb.shard1.puts").unwrap_or(0);
        assert_eq!(puts, 40);
        // A fan-out query touches every shard once.
        assert_eq!(snap.value("tsdb.shard0.queries"), Some(1));
        assert_eq!(snap.value("tsdb.shard1.queries"), Some(1));
        // Quarantine counters track points made unreadable by bit flips.
        db.seal_all();
        let mut flipped = 0i128;
        for nth in 0..db.stats().chunks as u64 {
            if let BitFlipOutcome::Quarantined { points } = db.flip_chunk_bit(nth, 1) {
                flipped += i128::from(points);
            }
        }
        let snap = registry.snapshot(Timestamp(0));
        let quarantined = snap.value("tsdb.shard0.quarantined_points").unwrap_or(0)
            + snap.value("tsdb.shard1.quarantined_points").unwrap_or(0);
        assert_eq!(quarantined, flipped);
    }

    #[test]
    fn incremental_key_hash_matches_built_key_hash() {
        let cases: Vec<(String, TagSet)> = vec![
            ("m".to_string(), TagSet::new()),
            (
                "ctt.air.co2".to_string(),
                [
                    ("city".to_string(), "trondheim".to_string()),
                    ("device".to_string(), "70b3000000000001".to_string()),
                ]
                .into(),
            ),
            (
                "x".to_string(),
                [
                    ("a".to_string(), "1".to_string()),
                    ("b".to_string(), "2".to_string()),
                    ("c".to_string(), "3".to_string()),
                ]
                .into(),
            ),
        ];
        let db = ShardedTsdb::new(8);
        for (metric, tags) in cases {
            let key = series_key(&metric, &tags);
            assert_eq!(series_key_hash(&metric, &tags), fnv1a(&key), "{key}");
            assert_eq!(
                db.shard_of_hash(series_key_hash(&metric, &tags)),
                db.shard_of_key(&key)
            );
        }
    }

    #[test]
    fn writer_session_equals_put_batch() {
        // Writing through per-shard sessions must leave the store, epochs,
        // and puts counters exactly as put_batch would.
        let mk = || {
            let registry = Registry::new();
            let mut db = ShardedTsdb::with_chunk_size(4, 8);
            db.attach_registry(&registry);
            (registry, db)
        };
        let points: Vec<DataPoint> = (0..6u32)
            .flat_map(|d| {
                (0..30i64).map(move |i| dp("m", &format!("n{d}"), i * 300, f64::from(d) + i as f64))
            })
            .collect();
        let (reg_a, a) = mk();
        assert_eq!(a.put_batch(&points), points.len() as u64);
        let (reg_b, b) = mk();
        // Route by hash, group per shard preserving arrival order, then
        // apply each shard's bucket through one write session.
        let mut buckets: Vec<Vec<&DataPoint>> = (0..b.shard_count()).map(|_| Vec::new()).collect();
        for p in &points {
            let shard = b.shard_of_hash(series_key_hash(&p.metric, &p.tags));
            if let Some(bucket) = buckets.get_mut(shard) {
                bucket.push(p);
            }
        }
        for (i, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let writer = b.writer(i).expect("shard in range");
            assert_eq!(writer.shard(), i);
            let mut session = writer.session();
            for p in bucket {
                let id = session.intern(&p.metric, &p.tags);
                session.append_run(id, &[(p.time, p.value)]);
            }
        }
        assert_eq!(a.stats(), b.stats());
        for i in 0..a.shard_count() {
            assert_eq!(a.epoch(i), b.epoch(i), "shard {i} epoch");
        }
        let q = Query::range("m", Timestamp(0), Timestamp(30 * 300)).group_by("device");
        assert_eq!(a.execute(&q).unwrap(), b.execute(&q).unwrap());
        let at = Timestamp(0);
        assert_eq!(reg_a.snapshot(at).to_csv(), reg_b.snapshot(at).to_csv());
    }

    #[test]
    fn empty_session_does_not_bump_epoch() {
        let db = ShardedTsdb::new(2);
        let before = db.epoch(0);
        let writer = db.writer(0).expect("shard 0");
        drop(writer.session());
        assert_eq!(db.epoch(0), before);
        assert!(db.writer(99).is_none());
    }

    #[test]
    fn one_shard_degenerates_to_flat_store() {
        let db = ShardedTsdb::new(1);
        assert_eq!(db.shard_count(), 1);
        fill(&db, 3, 10);
        assert_eq!(db.stats().series, 3);
        let db = ShardedTsdb::new(0); // clamped
        assert_eq!(db.shard_count(), 1);
    }
}
