//! The series store: interned series, Gorilla-chunked storage, retention.
//!
//! Writes go to a per-series open buffer that tolerates out-of-order
//! arrival (radio and broker hops reorder); when the buffer reaches the
//! chunk size it is sorted and sealed into an immutable compressed chunk.
//! Reads merge sealed chunks and the open buffer.

use crate::error::TsdbError;
use crate::gorilla::{CompressedChunk, EncCheckpoint, GorillaEncoder};
use crate::model::{series_key, DataPoint, TagSet};
use crate::rollup::{build_rollups, RollupBucket};
use ctt_core::time::{Span, Timestamp};
use std::collections::HashMap;

/// Identifies a series within one [`Tsdb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesId(pub u32);

/// Default points per sealed chunk (one day of 5-minute data is 288).
pub const DEFAULT_CHUNK_SIZE: usize = 512;

/// Default rollup bucket width: one hour, the dashboard downsample the
/// paper's Zeppelin panels use (`1h-avg`).
pub const DEFAULT_ROLLUP_INTERVAL: Span = Span::hours(1);

/// Collapse duplicate timestamps in a time-sorted point list, keeping the
/// last occurrence of each run (last write wins). Returns how many points
/// were removed.
pub(crate) fn dedup_last_write_wins(points: &mut Vec<(Timestamp, f64)>) -> usize {
    // In-place two-cursor compaction — the seal path calls this for every
    // chunk, so it must not allocate a shadow vector.
    let before = points.len();
    let mut w = 0usize;
    for r in 0..before {
        let Some(&(t, v)) = points.get(r) else {
            break;
        };
        // `w.wrapping_sub(1)` is `usize::MAX` when nothing is kept yet,
        // which `get_mut` rejects — the empty case without a branch.
        match points.get_mut(w.wrapping_sub(1)) {
            Some(prev) if prev.0 == t => prev.1 = v,
            _ => {
                if let Some(slot) = points.get_mut(w) {
                    *slot = (t, v);
                }
                w += 1;
            }
        }
    }
    points.truncate(w);
    before - w
}

#[derive(Debug, Clone)]
pub(crate) struct SealedChunk {
    pub(crate) chunk: CompressedChunk,
    pub(crate) start: Timestamp,
    pub(crate) end: Timestamp,
    /// Seal-time pre-downsampled summaries (sorted by bucket start).
    /// `None` after the chunk has been corrupted — serving then falls back
    /// to raw decode, which quarantines exactly like a plain read.
    pub(crate) rollups: Option<Vec<RollupBucket>>,
}

/// Per-read scan accounting: how much work the block index and rollups
/// saved. Exposed through query results up to the `ctt-obs` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanCounts {
    /// Sealed chunks excluded by the time-range block index (no decode).
    pub chunks_skipped: u64,
    /// Sealed chunks Gorilla-decoded.
    pub chunks_decoded: u64,
    /// Downsample buckets served from seal-time rollups (no decode).
    pub rollup_buckets: u64,
    /// Downsample buckets resolved by decoding raw points.
    pub raw_buckets: u64,
}

impl ScanCounts {
    /// Merge another report into this one.
    pub fn merge(&mut self, other: ScanCounts) {
        self.chunks_skipped += other.chunks_skipped;
        self.chunks_decoded += other.chunks_decoded;
        self.rollup_buckets += other.rollup_buckets;
        self.raw_buckets += other.raw_buckets;
    }
}

/// Streaming encoder over a series' open buffer: the Gorilla bitstream is
/// built as points arrive, so an in-order seal is a checkpoint rewind plus
/// `finish()` instead of an O(chunk) re-walk of every point.
///
/// The stream mirrors what `sort_dedup_open` would produce for strictly
/// increasing arrivals; a duplicate timestamp (last-write-wins rewrite) or
/// an out-of-order arrival abandons the stream (`push` returns `false`),
/// and the seal falls back to re-encoding the sorted, deduped buffer —
/// byte-identical output, and self-healing, since the post-seal rebuild
/// walks the sorted tail. Keeping the in-order fast path checkpoint-free
/// matters: it runs once per ingested point.
#[derive(Debug, Clone)]
struct OpenEnc {
    enc: GorillaEncoder,
    /// The threshold-seal cut: `(points before the last rollup-bucket
    /// boundary crossed, encoder state at that instant)`. `None` while all
    /// points sit in one bucket.
    cut: Option<(usize, EncCheckpoint)>,
    last_ts: Timestamp,
    /// End of the rollup bucket containing `last_ts`, cached so the
    /// boundary test is one compare per point instead of two `align_down`
    /// divisions. Valid whenever `count > 0` (the store's interval is
    /// fixed at construction).
    bucket_end: Timestamp,
}

impl OpenEnc {
    fn new() -> Self {
        OpenEnc {
            enc: GorillaEncoder::new(),
            cut: None,
            last_ts: Timestamp(i64::MIN),
            bucket_end: Timestamp(i64::MIN),
        }
    }

    /// Feed one arrival. Returns `false` when the stream cannot follow
    /// (out-of-order point, or a duplicate timestamp whose last-write-wins
    /// rewrite would mean re-encoding) — the caller then drops the stream
    /// and the next seal re-encodes from the sorted buffer.
    #[inline]
    fn push(&mut self, t: Timestamp, v: f64, interval: Span) -> bool {
        if self.enc.count() > 0 {
            if t <= self.last_ts {
                return false;
            }
            if t >= self.bucket_end {
                self.cut = Some((self.enc.count() as usize, self.enc.checkpoint()));
                self.bucket_end = t.align_down(interval) + interval;
            }
        } else {
            self.bucket_end = t.align_down(interval) + interval;
        }
        self.enc.append(t, v);
        self.last_ts = t;
        true
    }

    /// Consume the stream into the sealed chunk for its first `cut`
    /// points, if the stream can produce it without a re-walk: either the
    /// whole stream is sealed, or `cut` lands exactly on the recorded
    /// bucket-boundary checkpoint.
    fn into_chunk_for(mut self, cut: usize) -> Option<CompressedChunk> {
        if cut == self.enc.count() as usize {
            return Some(self.enc.finish());
        }
        match self.cut {
            Some((at, ck)) if at == cut => {
                self.enc.restore(&ck);
                Some(self.enc.finish())
            }
            _ => None,
        }
    }
}

/// One stored series.
#[derive(Debug, Clone)]
pub(crate) struct Series {
    pub(crate) metric: String,
    pub(crate) tags: TagSet,
    pub(crate) sealed: Vec<SealedChunk>,
    pub(crate) open: Vec<(Timestamp, f64)>,
    /// Block index: chunk positions sorted by `(start, seal order)`, so a
    /// range read binary-searches instead of walking every chunk.
    index: Vec<u32>,
    points: u64,
    /// Streaming encoder shadowing `open`; `None` after an out-of-order
    /// arrival until the next seal rebuilds it from the sorted tail.
    stream: Option<OpenEnc>,
    /// Monotone total of compressed bytes this series has ever encoded
    /// (seal-time chunks plus retention re-encodes). Feeds the ingest
    /// runtime's `encoded_bytes` counters; never decremented.
    encoded_bytes_total: u64,
}

impl Series {
    fn new(metric: String, tags: TagSet) -> Self {
        Series {
            metric,
            tags,
            sealed: Vec::new(),
            open: Vec::new(),
            index: Vec::new(),
            points: 0,
            stream: Some(OpenEnc::new()),
            encoded_bytes_total: 0,
        }
    }

    /// Append one arrival to the open buffer, keeping the streaming
    /// encoder in lockstep. The single write entry point shared by
    /// [`Tsdb::put`] and [`Tsdb::append_run`].
    fn push_point(&mut self, t: Timestamp, v: f64, interval: Span) {
        self.open.push((t, v));
        self.points += 1;
        if let Some(st) = &mut self.stream {
            if !st.push(t, v, interval) {
                self.stream = None;
            }
        }
    }

    /// Rebuild the streaming encoder from the current open buffer (after a
    /// seal drained a prefix, or retention rewrote the tail). Walks at most
    /// one chunk's worth of points; goes dormant again if the buffer holds
    /// out-of-order data.
    fn rebuild_stream(&mut self, interval: Span) {
        let mut st = OpenEnc::new();
        for &(t, v) in &self.open {
            if !st.push(t, v, interval) {
                self.stream = None;
                return;
            }
        }
        self.stream = Some(st);
    }

    /// Sort the open buffer and collapse duplicate timestamps.
    ///
    /// Stable sort + last-write-wins dedup: a QoS1 redelivery that slips
    /// past the pipeline's exactly-once guard must not double-count in
    /// Avg/Sum/Count. Within equal timestamps the stable sort preserves
    /// arrival order, so keeping the final value is last-write-wins.
    fn sort_dedup_open(&mut self) {
        self.open.sort_by_key(|&(t, _)| t);
        let removed = dedup_last_write_wins(&mut self.open);
        self.points = self.points.saturating_sub(removed as u64);
    }

    /// Append a sealed chunk and insert its position into the block index
    /// (after any chunk with the same start, keeping seal order stable).
    fn push_sealed(&mut self, sc: SealedChunk) {
        self.encoded_bytes_total += sc.chunk.size_bytes() as u64;
        let pos = self.index.partition_point(|&i| {
            self.sealed
                .get(i as usize)
                .is_some_and(|c| c.start <= sc.start)
        });
        let idx = self.sealed.len() as u32;
        self.sealed.push(sc);
        self.index.insert(pos, idx);
    }

    /// Rebuild the block index from scratch (after retention rewrites).
    fn rebuild_index(&mut self) {
        let mut ix: Vec<u32> = (0..self.sealed.len() as u32).collect();
        ix.sort_by_key(|&i| {
            (
                self.sealed
                    .get(i as usize)
                    .map_or(Timestamp(i64::MAX), |c| c.start),
                i,
            )
        });
        self.index = ix;
    }

    /// Encode the first `cut` points of the (sorted, deduplicated) open
    /// buffer into a sealed chunk, materializing its rollups. When the
    /// streaming encoder tracked the buffer (in-order arrivals) and `cut`
    /// lands on its bucket checkpoint, the chunk is a checkpoint rewind —
    /// no bitstream re-walk; otherwise the points are re-encoded. Either
    /// way the stream is rebuilt over the surviving tail.
    fn seal_prefix(&mut self, cut: usize, interval: Span) {
        let pts = self.open.get(..cut).unwrap_or(&[]);
        let (Some(&(start, _)), Some(&(end, _))) = (pts.first(), pts.last()) else {
            return; // nothing to seal
        };
        let rollups = build_rollups(pts, interval);
        // The stream is trustworthy only if it followed every arrival: its
        // point count then equals the deduplicated buffer's length.
        let chunk = self
            .stream
            .take()
            .filter(|st| st.enc.count() as usize == self.open.len())
            .and_then(|st| st.into_chunk_for(cut))
            .unwrap_or_else(|| {
                let mut enc = GorillaEncoder::new();
                for &(t, v) in pts {
                    enc.append(t, v);
                }
                enc.finish()
            });
        self.push_sealed(SealedChunk {
            chunk,
            start,
            end,
            rollups: Some(rollups),
        });
        self.open.drain(..cut);
        self.rebuild_stream(interval);
    }

    /// Seal the entire open buffer (force-flush path).
    fn seal_open(&mut self, interval: Span) {
        self.sort_dedup_open();
        self.seal_prefix(self.open.len(), interval);
    }

    /// Threshold seal: cut the sorted buffer at the last full rollup-bucket
    /// boundary, so sealed chunks align to buckets and — for in-order data
    /// — every bucket is wholly owned by one chunk, which is what lets the
    /// rollup path answer it without decoding neighbors. Falls back to a
    /// full seal when everything sits in one bucket (no boundary to cut
    /// at) or the tail alone already exceeds the chunk size (a bucket
    /// denser than a chunk must not pin the buffer open).
    fn seal_at_threshold(&mut self, interval: Span, chunk_size: usize) {
        self.sort_dedup_open();
        let Some(&(last, _)) = self.open.last() else {
            return;
        };
        let boundary = last.align_down(interval);
        let cut = self.open.partition_point(|&(t, _)| t < boundary);
        if cut == 0 || self.open.len() - cut >= chunk_size {
            self.seal_prefix(self.open.len(), interval);
        } else {
            self.seal_prefix(cut, interval);
        }
    }

    /// Sealed-chunk positions (in seal order) whose time span intersects
    /// `[start, end)`, plus how many chunks the block index excluded
    /// without decoding. The hit list is re-sorted into seal order so the
    /// downstream stable sort resolves duplicate timestamps exactly as the
    /// pre-index code did.
    pub(crate) fn chunks_overlapping(&self, start: Timestamp, end: Timestamp) -> (Vec<usize>, u64) {
        let cut = self
            .index
            .partition_point(|&i| self.sealed.get(i as usize).is_some_and(|c| c.start < end));
        let mut skipped = (self.index.len() - cut) as u64;
        let mut hits = Vec::new();
        for &i in self.index.get(..cut).unwrap_or(&[]) {
            match self.sealed.get(i as usize) {
                Some(c) if c.end >= start => hits.push(i as usize),
                _ => skipped += 1,
            }
        }
        hits.sort_unstable();
        (hits, skipped)
    }

    /// Minimum and maximum timestamp currently in the open buffer (which
    /// is unsorted between seals), or `None` when it is empty.
    pub(crate) fn open_span(&self) -> Option<(Timestamp, Timestamp)> {
        let mut it = self.open.iter().map(|&(t, _)| t);
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), t| (lo.min(t), hi.max(t))))
    }

    /// Collect points within `[start, end)`, sorted by time, with scan
    /// accounting. Corrupt sealed chunks are quarantined — skipped and
    /// counted — so one bad chunk degrades the read instead of failing the
    /// whole range.
    pub(crate) fn collect_counted(
        &self,
        start: Timestamp,
        end: Timestamp,
    ) -> (Vec<(Timestamp, f64)>, QuarantineReport, ScanCounts) {
        let mut out = Vec::new();
        let mut quarantine = QuarantineReport::default();
        let mut counts = ScanCounts::default();
        let (hits, skipped) = self.chunks_overlapping(start, end);
        counts.chunks_skipped = skipped;
        for i in hits {
            let Some(sc) = self.sealed.get(i) else {
                continue;
            };
            match sc.chunk.decode() {
                Ok(pts) => {
                    counts.chunks_decoded += 1;
                    out.extend(pts.into_iter().filter(|&(t, _)| t >= start && t < end));
                }
                Err(_) => {
                    quarantine.chunks += 1;
                    quarantine.points += u64::from(sc.chunk.count());
                }
            }
        }
        out.extend(
            self.open
                .iter()
                .copied()
                .filter(|&(t, _)| t >= start && t < end),
        );
        // Stable sort keeps seal order (oldest chunk first, open buffer
        // last) for equal timestamps, so last-write-wins dedup prefers the
        // most recently written copy of a duplicated timestamp.
        out.sort_by_key(|&(t, _)| t);
        dedup_last_write_wins(&mut out);
        (out, quarantine, counts)
    }

    /// [`Series::collect_counted`] without the scan accounting.
    fn collect(
        &self,
        start: Timestamp,
        end: Timestamp,
    ) -> (Vec<(Timestamp, f64)>, QuarantineReport) {
        let (pts, quarantine, _) = self.collect_counted(start, end);
        (pts, quarantine)
    }

    /// The value of the last point strictly before `t`, if one is
    /// readable — seeds `FillPolicy::Previous` so leading empty buckets
    /// carry the pre-range value. The block index answers "which chunk"
    /// from metadata; only chunks straddling `t` are decoded. The final
    /// value is read back through [`Series::collect`] so duplicate
    /// timestamps resolve last-write-wins exactly like a normal read.
    /// Corrupt chunks are skipped without being counted (the range read
    /// itself reports them).
    pub(crate) fn last_value_before(&self, t: Timestamp) -> Option<f64> {
        let mut best: Option<Timestamp> = None;
        let mut consider = |ts: Timestamp| {
            if ts < t && best.is_none_or(|b| ts > b) {
                best = Some(ts);
            }
        };
        for sc in &self.sealed {
            if sc.start >= t {
                continue;
            }
            if sc.end < t {
                consider(sc.end);
            } else if let Ok(pts) = sc.chunk.decode() {
                for &(ts, _) in &pts {
                    if ts >= t {
                        break;
                    }
                    consider(ts);
                }
            }
        }
        for &(ts, _) in &self.open {
            consider(ts);
        }
        let best = best?;
        let (pts, _) = self.collect(best, Timestamp(best.0.saturating_add(1)));
        pts.last().map(|&(_, v)| v)
    }

    fn compressed_bytes(&self) -> usize {
        self.sealed
            .iter()
            .map(|s| s.chunk.size_bytes())
            .sum::<usize>()
            + self.open.len() * std::mem::size_of::<(Timestamp, f64)>()
    }

    fn rollup_bytes(&self) -> usize {
        self.sealed
            .iter()
            .map(|s| {
                s.rollups
                    .as_ref()
                    .map_or(0, |r| r.len() * RollupBucket::SIZE_BYTES)
            })
            .sum()
    }
}

/// Corruption encountered (and skipped) during a read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Sealed chunks that failed to decode and were skipped.
    pub chunks: usize,
    /// Points those chunks advertised (the data made unreadable).
    pub points: u64,
}

impl QuarantineReport {
    /// Merge another report into this one.
    pub fn merge(&mut self, other: QuarantineReport) {
        self.chunks += other.chunks;
        self.points += other.points;
    }
}

/// Outcome of injecting a bit flip into a sealed chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitFlipOutcome {
    /// No sealed chunk exists to corrupt.
    NoChunks,
    /// A sealed chunk was selected but the bit could not be flipped (the
    /// chunk has no data bytes) — distinct from an empty store.
    BitOutOfRange,
    /// The flipped chunk still decodes (the corruption changed values,
    /// not structure) — no points are lost.
    StillReadable,
    /// The flipped chunk no longer decodes; reads will quarantine it.
    Quarantined {
        /// Points the chunk advertised before corruption.
        points: u32,
    },
}

/// Full-store integrity summary from trial-decoding every sealed chunk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Points recoverable by reads (decodable chunks + open buffers).
    pub readable_points: u64,
    /// Sealed chunks that fail to decode.
    pub quarantined_chunks: usize,
    /// Points advertised by the quarantined chunks.
    pub quarantined_points: u64,
}

/// Storage statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of series.
    pub series: usize,
    /// Total stored points.
    pub points: u64,
    /// Total sealed chunks.
    pub chunks: usize,
    /// Approximate stored bytes (compressed chunks + open buffers),
    /// excluding rollups so the raw compression ratio stays visible.
    pub bytes: usize,
    /// Bytes of seal-time rollup summaries (the cost of fast serving).
    pub rollup_bytes: usize,
}

/// The time-series database.
#[derive(Debug)]
pub struct Tsdb {
    pub(crate) series: Vec<Series>,
    by_key: HashMap<String, SeriesId>,
    by_metric: HashMap<String, Vec<SeriesId>>,
    chunk_size: usize,
    rollup_interval: Span,
}

impl Default for Tsdb {
    fn default() -> Self {
        Tsdb::new()
    }
}

impl Tsdb {
    /// New database with the default chunk size and rollup interval.
    pub fn new() -> Self {
        Tsdb::with_layout(DEFAULT_CHUNK_SIZE, DEFAULT_ROLLUP_INTERVAL)
    }

    /// New database with a custom points-per-chunk.
    pub fn with_chunk_size(chunk_size: usize) -> Self {
        Tsdb::with_layout(chunk_size, DEFAULT_ROLLUP_INTERVAL)
    }

    /// New database with custom points-per-chunk and rollup bucket width.
    /// Threshold seals cut at rollup boundaries, so the interval also
    /// shapes chunk spans; queries downsampling at exactly this interval
    /// are served from seal-time rollups without decoding chunks.
    pub fn with_layout(chunk_size: usize, rollup_interval: Span) -> Self {
        assert!(chunk_size >= 2, "chunk size too small");
        assert!(
            rollup_interval.as_seconds() > 0,
            "rollup interval must be positive"
        );
        Tsdb {
            series: Vec::new(),
            by_key: HashMap::new(),
            by_metric: HashMap::new(),
            chunk_size,
            rollup_interval,
        }
    }

    /// The rollup bucket width this store materializes at seal time.
    pub fn rollup_interval(&self) -> Span {
        self.rollup_interval
    }

    /// Intern a series by metric + tags, returning its id (existing or
    /// freshly created). Ids are dense and never reused, so callers — the
    /// ingest runtime's per-writer key tables in particular — may cache
    /// them indefinitely.
    pub fn intern(&mut self, metric: &str, tags: &TagSet) -> SeriesId {
        let key = series_key(metric, tags);
        match self.by_key.get(&key) {
            Some(&id) => id,
            None => {
                let id = SeriesId(self.series.len() as u32);
                self.series
                    .push(Series::new(metric.to_string(), tags.clone()));
                self.by_key.insert(key, id);
                self.by_metric
                    .entry(metric.to_string())
                    .or_default()
                    .push(id);
                id
            }
        }
    }

    /// Append a run of points to an already-interned series, checking the
    /// seal threshold after every point — byte-identical to calling
    /// [`Tsdb::put`] once per point, minus the per-point key build and map
    /// probe. Unknown ids are ignored (ids only come from this store).
    pub fn append_run(&mut self, id: SeriesId, pts: &[(Timestamp, f64)]) {
        let interval = self.rollup_interval;
        let chunk_size = self.chunk_size;
        if let Some(series) = self.series.get_mut(id.0 as usize) {
            for &(t, v) in pts {
                series.push_point(t, v, interval);
                if series.open.len() >= chunk_size {
                    series.seal_at_threshold(interval, chunk_size);
                }
            }
        }
    }

    /// Monotone total of compressed bytes this store has encoded (seal
    /// chunks plus retention re-encodes). Snapshot deltas of this feed the
    /// ingest runtime's per-shard `encoded_bytes` counters.
    pub fn encoded_bytes_total(&self) -> u64 {
        self.series.iter().map(|s| s.encoded_bytes_total).sum()
    }

    /// Insert a data point, interning its series on first sight.
    pub fn put(&mut self, point: &DataPoint) -> SeriesId {
        let id = self.intern(&point.metric, &point.tags);
        // by_key and series grow together, so an interned id is always in
        // range; the fallback keeps this path panic-free regardless.
        if let Some(series) = self.series.get_mut(id.0 as usize) {
            series.push_point(point.time, point.value, self.rollup_interval);
            if series.open.len() >= self.chunk_size {
                series.seal_at_threshold(self.rollup_interval, self.chunk_size);
            }
        }
        id
    }

    /// Batched ingest: insert every point, interning series on first sight.
    /// Returns the number of points written. The single-shard building
    /// block of [`crate::shard::ShardedTsdb::put_batch`] — batching lets a
    /// shard be locked once per batch instead of once per point.
    pub fn put_batch(&mut self, points: &[DataPoint]) -> u64 {
        for p in points {
            self.put(p);
        }
        points.len() as u64
    }

    /// All series ids for a metric.
    pub fn series_for_metric(&self, metric: &str) -> &[SeriesId] {
        self.by_metric.get(metric).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A series id by exact metric + tags.
    pub fn series_id(&self, metric: &str, tags: &TagSet) -> Option<SeriesId> {
        self.by_key.get(&series_key(metric, tags)).copied()
    }

    /// The tag set of a series, if the id is known.
    pub fn tags(&self, id: SeriesId) -> Option<&TagSet> {
        self.series.get(id.0 as usize).map(|s| &s.tags)
    }

    /// The metric name of a series, if the id is known.
    pub fn metric(&self, id: SeriesId) -> Option<&str> {
        self.series.get(id.0 as usize).map(|s| s.metric.as_str())
    }

    /// All distinct metric names (sorted).
    pub fn metrics(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.by_metric.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Points of one series in `[start, end)`, time-sorted. Corrupt chunks
    /// are silently quarantined; use [`Tsdb::read_with_quarantine`] when the
    /// caller needs to know how much data was unreadable.
    pub fn read(
        &self,
        id: SeriesId,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<(Timestamp, f64)>, TsdbError> {
        self.read_with_quarantine(id, start, end)
            .map(|(pts, _)| pts)
    }

    /// Like [`Tsdb::read`], but also reports chunks that failed to decode
    /// and were skipped (graceful degradation under storage corruption).
    pub fn read_with_quarantine(
        &self,
        id: SeriesId,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<(Vec<(Timestamp, f64)>, QuarantineReport), TsdbError> {
        Ok(self
            .series
            .get(id.0 as usize)
            .ok_or(TsdbError::UnknownSeries(id))?
            .collect(start, end))
    }

    /// Fault injection: flip one bit in the `nth` sealed chunk (modulo the
    /// number of sealed chunks, in series order) and report whether the
    /// chunk survived. Returns [`BitFlipOutcome::NoChunks`] when nothing is
    /// sealed yet.
    pub fn flip_chunk_bit(&mut self, nth_chunk: u64, bit: u64) -> BitFlipOutcome {
        let total: usize = self.series.iter().map(|s| s.sealed.len()).sum();
        if total == 0 {
            return BitFlipOutcome::NoChunks;
        }
        let mut target = (nth_chunk % total as u64) as usize;
        for s in &mut self.series {
            if target >= s.sealed.len() {
                target -= s.sealed.len();
                continue;
            }
            let Some(sc) = s.sealed.get_mut(target) else {
                break;
            };
            if !sc.chunk.flip_bit(bit) {
                return BitFlipOutcome::BitOutOfRange;
            }
            // Even a still-readable flip may have changed values, so the
            // rollups no longer summarize the chunk: drop them and let
            // serving fall back to raw decode (which quarantines exactly
            // like a plain read if the bitstream broke).
            sc.rollups = None;
            let outcome = match sc.chunk.decode() {
                Ok(pts) => {
                    // A readable flip may have moved points in time (a
                    // corrupted timestamp delta shifts every later point),
                    // so the chunk's time-range metadata is *widened* to
                    // cover wherever the points now decode to — otherwise
                    // the block index would skip buckets the points moved
                    // into. Widened, not replaced: the original range stays
                    // covered so reads over it still attribute quarantine
                    // to this chunk if a later flip breaks the bitstream.
                    let min = pts.iter().map(|&(t, _)| t).min();
                    let max = pts.iter().map(|&(t, _)| t).max();
                    if let (Some(min), Some(max)) = (min, max) {
                        sc.start = sc.start.min(min);
                        sc.end = sc.end.max(max);
                    }
                    BitFlipOutcome::StillReadable
                }
                Err(_) => BitFlipOutcome::Quarantined {
                    points: sc.chunk.count(),
                },
            };
            s.rebuild_index();
            return outcome;
        }
        BitFlipOutcome::NoChunks
    }

    /// Trial-decode every sealed chunk and summarize what reads can still
    /// recover versus what is quarantined. `readable_points +
    /// quarantined_points` equals [`StoreStats::points`] — the conservation
    /// invariant the chaos loss ledger checks.
    pub fn integrity_scan(&self) -> IntegrityReport {
        let mut report = IntegrityReport::default();
        for s in &self.series {
            for sc in &s.sealed {
                match sc.chunk.decode() {
                    Ok(pts) => report.readable_points += pts.len() as u64,
                    Err(_) => {
                        report.quarantined_chunks += 1;
                        report.quarantined_points += u64::from(sc.chunk.count());
                    }
                }
            }
            report.readable_points += s.open.len() as u64;
        }
        report
    }

    /// Number of points stored for a series (0 for unknown ids).
    pub fn point_count(&self, id: SeriesId) -> u64 {
        self.series.get(id.0 as usize).map_or(0, |s| s.points)
    }

    /// Storage statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            series: self.series.len(),
            points: self.series.iter().map(|s| s.points).sum(),
            chunks: self.series.iter().map(|s| s.sealed.len()).sum(),
            bytes: self.series.iter().map(Series::compressed_bytes).sum(),
            rollup_bytes: self.series.iter().map(Series::rollup_bytes).sum(),
        }
    }

    /// Force-seal all open buffers (e.g. before measuring compression).
    pub fn seal_all(&mut self) {
        for s in &mut self.series {
            s.seal_open(self.rollup_interval);
        }
    }

    /// Retention: drop all data strictly before `cutoff`. Sealed chunks that
    /// straddle the cutoff are re-encoded. Returns points dropped, or the
    /// decode error if a straddling chunk is corrupt (no data is discarded
    /// for that series in that case — the chunk is kept as-is).
    pub fn evict_before(&mut self, cutoff: Timestamp) -> Result<u64, TsdbError> {
        let mut dropped = 0u64;
        let mut first_err = None;
        let rollup_interval = self.rollup_interval;
        for s in &mut self.series {
            let mut kept_sealed = Vec::with_capacity(s.sealed.len());
            let mut reencoded_bytes = 0u64;
            for sc in s.sealed.drain(..) {
                if sc.end < cutoff {
                    dropped += u64::from(sc.chunk.count());
                } else if sc.start >= cutoff {
                    kept_sealed.push(sc);
                } else {
                    // Straddles: re-encode the surviving tail.
                    let pts: Vec<_> = match sc.chunk.decode() {
                        Ok(pts) => pts.into_iter().filter(|&(t, _)| t >= cutoff).collect(),
                        Err(e) => {
                            // Keep the undecodable chunk rather than guess.
                            first_err.get_or_insert(e);
                            kept_sealed.push(sc);
                            continue;
                        }
                    };
                    dropped += u64::from(sc.chunk.count()) - pts.len() as u64;
                    if let (Some(&(start, _)), Some(&(end, _))) = (pts.first(), pts.last()) {
                        let mut enc = GorillaEncoder::new();
                        for &(t, v) in &pts {
                            enc.append(t, v);
                        }
                        let chunk = enc.finish();
                        reencoded_bytes += chunk.size_bytes() as u64;
                        // Rollups rebuilt over the surviving points only:
                        // the truncated leading bucket summarizes exactly
                        // what a raw decode of the new chunk would see.
                        kept_sealed.push(SealedChunk {
                            chunk,
                            start,
                            end,
                            rollups: Some(build_rollups(&pts, rollup_interval)),
                        });
                    }
                }
            }
            s.sealed = kept_sealed;
            s.encoded_bytes_total += reencoded_bytes;
            s.rebuild_index();
            let before = s.open.len();
            s.open.retain(|&(t, _)| t >= cutoff);
            dropped += (before - s.open.len()) as u64;
            if before != s.open.len() {
                // Retention rewrote the open buffer underneath the
                // streaming encoder; rebuild it over what survived.
                s.rebuild_stream(rollup_interval);
            }
        }
        // Recompute per-series point counts after sealed drops.
        for s in &mut self.series {
            let sealed_pts: u64 = s.sealed.iter().map(|c| u64::from(c.chunk.count())).sum();
            s.points = sealed_pts + s.open.len() as u64;
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(dropped),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dp(metric: &str, device: &str, t: i64, v: f64) -> DataPoint {
        DataPoint::new(
            metric,
            vec![("device".to_string(), device.to_string())],
            Timestamp(t),
            v,
        )
        .unwrap()
    }

    #[test]
    fn put_and_read_roundtrip() {
        let mut db = Tsdb::new();
        for i in 0..100 {
            db.put(&dp("m", "n1", i * 300, i as f64));
        }
        let tags = db.tags(SeriesId(0)).expect("series 0 exists").clone();
        let id = db.series_id("m", &tags).expect("series exists");
        let pts = db.read(id, Timestamp(0), Timestamp(100 * 300)).unwrap();
        assert_eq!(pts.len(), 100);
        assert_eq!(pts[7], (Timestamp(7 * 300), 7.0));
    }

    #[test]
    fn series_interning() {
        let mut db = Tsdb::new();
        let a = db.put(&dp("m", "n1", 0, 1.0));
        let b = db.put(&dp("m", "n1", 300, 2.0));
        let c = db.put(&dp("m", "n2", 0, 3.0));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(db.series_for_metric("m").len(), 2);
        assert_eq!(db.series_for_metric("other").len(), 0);
        assert_eq!(db.metric(a), Some("m"));
        assert_eq!(
            db.tags(c).unwrap().get("device").map(String::as_str),
            Some("n2")
        );
    }

    #[test]
    fn chunks_seal_at_threshold() {
        let mut db = Tsdb::with_chunk_size(10);
        for i in 0..25 {
            db.put(&dp("m", "n1", i * 60, i as f64));
        }
        let st = db.stats();
        assert_eq!(st.chunks, 2, "two sealed chunks of 10");
        assert_eq!(st.points, 25);
        // All 25 still readable.
        let pts = db
            .read(SeriesId(0), Timestamp(0), Timestamp(i64::MAX / 2))
            .unwrap();
        assert_eq!(pts.len(), 25);
    }

    #[test]
    fn out_of_order_within_open_buffer() {
        let mut db = Tsdb::with_chunk_size(100);
        db.put(&dp("m", "n1", 600, 2.0));
        db.put(&dp("m", "n1", 0, 0.0));
        db.put(&dp("m", "n1", 300, 1.0));
        let pts = db
            .read(SeriesId(0), Timestamp(0), Timestamp(10_000))
            .unwrap();
        assert_eq!(
            pts,
            vec![
                (Timestamp(0), 0.0),
                (Timestamp(300), 1.0),
                (Timestamp(600), 2.0)
            ]
        );
    }

    #[test]
    fn out_of_order_across_chunks_still_reads_sorted() {
        let mut db = Tsdb::with_chunk_size(4);
        // First chunk seals with times 1000..1003.
        for i in 0..4 {
            db.put(&dp("m", "n1", 1000 + i, 1.0));
        }
        // Late straggler older than the sealed chunk.
        db.put(&dp("m", "n1", 500, 9.9));
        let pts = db
            .read(SeriesId(0), Timestamp(0), Timestamp(10_000))
            .unwrap();
        assert_eq!(pts.first(), Some(&(Timestamp(500), 9.9)));
        assert_eq!(pts.len(), 5);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn range_queries_clip() {
        let mut db = Tsdb::with_chunk_size(8);
        for i in 0..50 {
            db.put(&dp("m", "n1", i * 100, i as f64));
        }
        let pts = db
            .read(SeriesId(0), Timestamp(1000), Timestamp(2000))
            .unwrap();
        assert_eq!(pts.len(), 10);
        assert_eq!(pts.first().unwrap().0, Timestamp(1000));
        assert_eq!(pts.last().unwrap().0, Timestamp(1900));
    }

    #[test]
    fn stats_and_compression() {
        let mut db = Tsdb::new();
        for i in 0..2000 {
            db.put(&dp("m", "n1", i * 300, 400.0 + (i as f64 * 0.01).sin()));
        }
        db.seal_all();
        let st = db.stats();
        assert_eq!(st.series, 1);
        assert_eq!(st.points, 2000);
        let raw = 2000 * 16;
        assert!(
            st.bytes < raw / 2,
            "compressed {} bytes vs raw {raw}",
            st.bytes
        );
    }

    #[test]
    fn retention_drops_old_points() {
        let mut db = Tsdb::with_chunk_size(10);
        for i in 0..100 {
            db.put(&dp("m", "n1", i * 100, i as f64));
        }
        let dropped = db.evict_before(Timestamp(5000)).unwrap();
        assert_eq!(dropped, 50);
        let pts = db
            .read(SeriesId(0), Timestamp(0), Timestamp(100 * 100))
            .unwrap();
        assert_eq!(pts.len(), 50);
        assert!(pts.iter().all(|&(t, _)| t >= Timestamp(5000)));
        assert_eq!(db.point_count(SeriesId(0)), 50);
        assert_eq!(db.stats().points, 50);
    }

    #[test]
    fn retention_straddling_chunk_reencoded() {
        let mut db = Tsdb::with_chunk_size(10);
        for i in 0..10 {
            db.put(&dp("m", "n1", i * 100, i as f64));
        }
        // Chunk spans 0..900; cutoff mid-chunk.
        let dropped = db.evict_before(Timestamp(450)).unwrap();
        assert_eq!(dropped, 5);
        let pts = db
            .read(SeriesId(0), Timestamp(0), Timestamp(10_000))
            .unwrap();
        assert_eq!(pts.len(), 5);
        assert_eq!(pts.first().unwrap().0, Timestamp(500));
    }

    #[test]
    fn corrupt_chunk_quarantined_rest_of_range_survives() {
        let mut db = Tsdb::with_chunk_size(10);
        for i in 0..30 {
            db.put(&dp("m", "n1", i * 100, i as f64));
        }
        db.seal_all();
        assert_eq!(db.stats().chunks, 3);
        // Corrupt until a chunk actually quarantines (some flips only
        // perturb values without breaking the bitstream).
        let mut outcome = db.flip_chunk_bit(1, 3);
        let mut bit = 4u64;
        while outcome == BitFlipOutcome::StillReadable {
            outcome = db.flip_chunk_bit(1, bit);
            bit += 7;
        }
        let BitFlipOutcome::Quarantined { points } = outcome else {
            panic!("expected a quarantine, got {outcome:?}");
        };
        assert_eq!(points, 10);
        // The read degrades to the surviving chunks instead of failing.
        let (pts, q) = db
            .read_with_quarantine(SeriesId(0), Timestamp(0), Timestamp(10_000))
            .unwrap();
        assert_eq!(q.chunks, 1);
        assert_eq!(q.points, 10);
        assert_eq!(pts.len(), 20);
        // Plain read agrees, and the conservation invariant holds.
        assert_eq!(
            db.read(SeriesId(0), Timestamp(0), Timestamp(10_000))
                .unwrap()
                .len(),
            20
        );
        let scan = db.integrity_scan();
        assert_eq!(scan.quarantined_chunks, 1);
        assert_eq!(
            scan.readable_points + scan.quarantined_points,
            db.stats().points
        );
    }

    #[test]
    fn integrity_scan_counts_open_buffer() {
        let mut db = Tsdb::with_chunk_size(100);
        for i in 0..7 {
            db.put(&dp("m", "n1", i * 100, i as f64));
        }
        let scan = db.integrity_scan();
        assert_eq!(scan.readable_points, 7);
        assert_eq!(scan.quarantined_chunks, 0);
        assert_eq!(db.flip_chunk_bit(0, 0), BitFlipOutcome::NoChunks);
    }

    #[test]
    fn metrics_listing() {
        let mut db = Tsdb::new();
        db.put(&dp("b.metric", "n", 0, 1.0));
        db.put(&dp("a.metric", "n", 0, 1.0));
        assert_eq!(db.metrics(), vec!["a.metric", "b.metric"]);
    }

    #[test]
    #[should_panic(expected = "chunk size too small")]
    fn tiny_chunk_size_rejected() {
        Tsdb::with_chunk_size(1);
    }

    #[test]
    fn duplicate_timestamp_dedups_last_write_wins_in_open_buffer() {
        let mut db = Tsdb::with_chunk_size(100);
        db.put(&dp("m", "n1", 300, 1.0));
        db.put(&dp("m", "n1", 300, 2.0)); // QoS1 redelivery with a new value
        db.put(&dp("m", "n1", 600, 3.0));
        let pts = db
            .read(SeriesId(0), Timestamp(0), Timestamp(10_000))
            .unwrap();
        assert_eq!(pts, vec![(Timestamp(300), 2.0), (Timestamp(600), 3.0)]);
    }

    #[test]
    fn duplicate_timestamp_dedups_on_seal() {
        let mut db = Tsdb::with_chunk_size(4);
        db.put(&dp("m", "n1", 0, 1.0));
        db.put(&dp("m", "n1", 300, 5.0));
        db.put(&dp("m", "n1", 300, 6.0)); // duplicate inside the chunk
        db.put(&dp("m", "n1", 600, 7.0)); // triggers the seal
        let st = db.stats();
        assert_eq!(st.chunks, 1);
        assert_eq!(st.points, 3, "duplicate must not be stored twice");
        assert_eq!(db.point_count(SeriesId(0)), 3);
        let pts = db
            .read(SeriesId(0), Timestamp(0), Timestamp(10_000))
            .unwrap();
        assert_eq!(
            pts,
            vec![
                (Timestamp(0), 1.0),
                (Timestamp(300), 6.0),
                (Timestamp(600), 7.0)
            ]
        );
    }

    #[test]
    fn duplicate_across_sealed_and_open_prefers_latest_write() {
        let mut db = Tsdb::with_chunk_size(3);
        for i in 0..3 {
            db.put(&dp("m", "n1", i * 300, i as f64)); // seals at 3
        }
        // A late redelivery of t=300 lands in the open buffer.
        db.put(&dp("m", "n1", 300, 99.0));
        let pts = db
            .read(SeriesId(0), Timestamp(0), Timestamp(10_000))
            .unwrap();
        assert_eq!(pts.len(), 3, "no double-count across sealed + open");
        assert_eq!(pts[1], (Timestamp(300), 99.0), "open buffer wins");
    }

    #[test]
    fn put_batch_matches_pointwise_puts() {
        let points: Vec<DataPoint> = (0..50).map(|i| dp("m", "n1", i * 60, i as f64)).collect();
        let mut a = Tsdb::with_chunk_size(16);
        let stored = a.put_batch(&points);
        assert_eq!(stored, 50);
        let mut b = Tsdb::with_chunk_size(16);
        for p in &points {
            b.put(p);
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(
            a.read(SeriesId(0), Timestamp(0), Timestamp(i64::MAX / 2))
                .unwrap(),
            b.read(SeriesId(0), Timestamp(0), Timestamp(i64::MAX / 2))
                .unwrap()
        );
    }

    #[test]
    fn unflippable_chunk_is_not_reported_as_empty_store() {
        // A constant series can compress to a chunk whose payload is all
        // header (data may still be non-empty); instead force the edge by
        // checking both outcomes are distinguishable on an empty store vs
        // a store with sealed chunks.
        let mut db = Tsdb::with_chunk_size(10);
        assert_eq!(db.flip_chunk_bit(0, 0), BitFlipOutcome::NoChunks);
        for i in 0..10 {
            db.put(&dp("m", "n1", i * 100, i as f64));
        }
        assert_ne!(db.flip_chunk_bit(0, 0), BitFlipOutcome::NoChunks);
    }
}
