//! Text import/export in the OpenTSDB telnet `put` format:
//!
//! ```text
//! put ctt.air.co2 1483228800 412.5 device=70b3d50000000001 city=trondheim
//! ```
//!
//! Used for seeding test fixtures, dumping the store for inspection, and
//! the demo's "browse historic data" flows.

use crate::model::{DataPoint, ModelError};
use crate::query::execute;
use crate::query::Query;
use crate::store::Tsdb;
use ctt_core::time::Timestamp;
use std::fmt;
use std::fmt::Write as _;

/// Errors from [`parse_line`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Line does not start with `put`.
    NotPut,
    /// Missing one of metric/timestamp/value.
    MissingField(&'static str),
    /// Unparseable timestamp or value.
    BadNumber(String),
    /// Tag without `=`.
    BadTag(String),
    /// Rejected by the data model.
    Model(ModelError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::NotPut => f.write_str("line must start with 'put'"),
            ParseError::MissingField(w) => write!(f, "missing {w}"),
            ParseError::BadNumber(w) => write!(f, "unparseable {w}"),
            ParseError::BadTag(t) => write!(f, "tag without '=': {t:?}"),
            ParseError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse one `put` line.
pub fn parse_line(line: &str) -> Result<DataPoint, ParseError> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some("put") {
        return Err(ParseError::NotPut);
    }
    let metric = parts.next().ok_or(ParseError::MissingField("metric"))?;
    let ts: i64 = parts
        .next()
        .ok_or(ParseError::MissingField("timestamp"))?
        .parse()
        .map_err(|_| ParseError::BadNumber("timestamp".to_string()))?;
    let value: f64 = parts
        .next()
        .ok_or(ParseError::MissingField("value"))?
        .parse()
        .map_err(|_| ParseError::BadNumber("value".to_string()))?;
    let mut tags = Vec::new();
    for kv in parts {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| ParseError::BadTag(kv.to_string()))?;
        tags.push((k.to_string(), v.to_string()));
    }
    DataPoint::new(metric, tags, Timestamp(ts), value).map_err(ParseError::Model)
}

/// Format one point as a `put` line.
pub fn format_line(p: &DataPoint) -> String {
    let mut s = format!("put {} {} {}", p.metric, p.time.as_seconds(), p.value);
    for (k, v) in &p.tags {
        let _ = write!(s, " {k}={v}");
    }
    s
}

/// Import a multi-line text dump; returns (imported, errors).
pub fn import(db: &mut Tsdb, text: &str) -> (usize, Vec<(usize, ParseError)>) {
    let mut ok = 0;
    let mut errors = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_line(line) {
            Ok(p) => {
                db.put(&p);
                ok += 1;
            }
            Err(e) => errors.push((i + 1, e)),
        }
    }
    (ok, errors)
}

/// Export every point of a metric within a range as `put` lines. Series
/// whose chunks fail to decode are skipped (partial export over no export).
pub fn export(db: &Tsdb, metric: &str, start: Timestamp, end: Timestamp) -> String {
    let mut out = String::new();
    for &id in db.series_for_metric(metric) {
        let Some(tags) = db.tags(id).cloned() else {
            continue;
        };
        for (t, v) in db.read(id, start, end).unwrap_or_default() {
            let p = DataPoint {
                metric: metric.to_string(),
                tags: tags.clone(),
                time: t,
                value: v,
            };
            out.push_str(&format_line(&p));
            out.push('\n');
        }
    }
    out
}

/// Render a query result as an aligned text table (for terminal demos).
pub fn render_table(db: &Tsdb, q: &Query) -> String {
    let mut out = String::new();
    let results = match execute(db, q) {
        Ok(results) => results,
        Err(e) => {
            let _ = writeln!(out, "query failed: {e}");
            return out;
        }
    };
    let _ = writeln!(out, "metric: {}  [{} .. {})", q.metric, q.start, q.end);
    for r in results {
        let group: Vec<String> = r.group.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(
            out,
            "-- group {{{}}} ({} series)",
            group.join(","),
            r.source_series
        );
        for (t, v) in &r.series.points {
            let _ = writeln!(out, "{t}  {v:.3}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SeriesId;

    #[test]
    fn parse_basic_line() {
        let p = parse_line("put ctt.air.co2 1483228800 412.5 device=n1 city=trd").unwrap();
        assert_eq!(p.metric, "ctt.air.co2");
        assert_eq!(p.time, Timestamp(1_483_228_800));
        assert_eq!(p.value, 412.5);
        assert_eq!(p.tags.len(), 2);
    }

    #[test]
    fn parse_no_tags() {
        let p = parse_line("put m 0 1.0").unwrap();
        assert!(p.tags.is_empty());
    }

    #[test]
    fn parse_errors() {
        assert_eq!(parse_line("get m 0 1"), Err(ParseError::NotPut));
        assert_eq!(parse_line("put"), Err(ParseError::MissingField("metric")));
        assert_eq!(
            parse_line("put m"),
            Err(ParseError::MissingField("timestamp"))
        );
        assert_eq!(
            parse_line("put m 0"),
            Err(ParseError::MissingField("value"))
        );
        assert!(matches!(
            parse_line("put m x 1"),
            Err(ParseError::BadNumber(_))
        ));
        assert!(matches!(
            parse_line("put m 0 y"),
            Err(ParseError::BadNumber(_))
        ));
        assert!(matches!(
            parse_line("put m 0 1 notag"),
            Err(ParseError::BadTag(_))
        ));
        assert!(matches!(
            parse_line("put bad&metric 0 1"),
            Err(ParseError::Model(_))
        ));
    }

    #[test]
    fn format_parse_roundtrip() {
        let p = parse_line("put m 100 2.25 a=1 b=2").unwrap();
        let line = format_line(&p);
        let back = parse_line(&line).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn import_counts_and_reports_errors() {
        let mut db = Tsdb::new();
        let text =
            "\n# comment\nput m 0 1.0 d=a\nput m 300 2.0 d=a\nbogus line\nput m 600 3.0 d=a\n";
        let (ok, errs) = import(&mut db, text);
        assert_eq!(ok, 3);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].0, 5); // 1-based line number of "bogus line"
        assert_eq!(db.stats().points, 3);
    }

    #[test]
    fn export_import_roundtrip() {
        let mut db = Tsdb::new();
        let text = "put m 0 1.5 d=a\nput m 300 2.5 d=a\nput m 0 9.5 d=b\n";
        import(&mut db, text);
        let dump = export(&db, "m", Timestamp(0), Timestamp(10_000));
        let mut db2 = Tsdb::new();
        let (ok, errs) = import(&mut db2, &dump);
        assert_eq!(ok, 3);
        assert!(errs.is_empty());
        assert_eq!(db2.stats().points, 3);
        assert_eq!(
            db2.read(SeriesId(0), Timestamp(0), Timestamp(301))
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn render_table_smoke() {
        let mut db = Tsdb::new();
        import(&mut db, "put m 0 1.0 d=a\nput m 300 2.0 d=a\n");
        let q = Query::range("m", Timestamp(0), Timestamp(600)).group_by("d");
        let table = render_table(&db, &q);
        assert!(table.contains("metric: m"));
        assert!(table.contains("group {d=a}"));
        assert!(table.contains("1.000"));
    }
}
