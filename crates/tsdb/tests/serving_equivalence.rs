//! Property: the full serving stack (seal-time rollups + block index +
//! seal-aware cache + parallel collect) is byte-identical to the raw
//! reference path (sequential, uncached, full Gorilla re-decode) for *any*
//! interleaving of batched writes, seals, retention sweeps, and bit-flip
//! corruption. [`ServePolicy`] chooses how much work a query skips — never
//! what it answers.
//!
//! The store uses a small rollup interval (10 min) and chunk size so that
//! sealed chunks, rollup-served buckets, partially-covered edge buckets,
//! open-buffer overlaps, and index skips all occur within short workloads.

use ctt_core::time::{Span, Timestamp};
use ctt_tsdb::{Aggregator, DataPoint, Downsample, FillPolicy, Query, ServePolicy, ShardedTsdb};
use proptest::prelude::*;

const HORIZON: i64 = 36_000; // 10 hours of 10-minute rollup buckets
const ROLLUP: Span = Span::minutes(10);

/// One step of an interleaved workload.
#[derive(Debug, Clone)]
enum Op {
    /// Write a batch of points (metric idx, device idx, time, value).
    PutBatch(Vec<(u8, u8, i64, f64)>),
    /// Force-seal open buffers (materializes rollups + block index).
    SealAll,
    /// Drop everything strictly before the cutoff.
    EvictBefore(i64),
    /// Corrupt one bit of one sealed chunk (drops its rollups).
    FlipBit(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => proptest::collection::vec(
            (0u8..2, 0u8..4, 0i64..HORIZON, -1e6f64..1e6),
            1..48
        )
        .prop_map(Op::PutBatch),
        2 => Just(Op::SealAll),
        1 => (0i64..HORIZON).prop_map(Op::EvictBefore),
        2 => (0u64..64, 1u64..512).prop_map(|(n, b)| Op::FlipBit(n, b)),
    ]
}

fn build_point(m: u8, d: u8, t: i64, v: f64) -> DataPoint {
    DataPoint::new(
        format!("metric.{m}"),
        vec![("device".to_string(), format!("node{d}"))],
        Timestamp(t),
        v,
    )
    .expect("valid point")
}

/// Dashboard query shapes: rollup-servable downsamples (interval matches
/// the store's), non-matching intervals (raw only), leading-gap Previous
/// fill, rate, and order-sensitive aggregators that must bypass rollups.
fn queries() -> Vec<Query> {
    let ds = |interval: Span, aggregator: Aggregator, fill: FillPolicy| Downsample {
        interval,
        aggregator,
        fill,
    };
    let full = || Query::range("metric.0", Timestamp(0), Timestamp(HORIZON));
    vec![
        full(),
        full().downsample(ds(ROLLUP, Aggregator::Avg, FillPolicy::None)),
        full()
            .group_by("device")
            .downsample(ds(ROLLUP, Aggregator::Sum, FillPolicy::Zero)),
        // Sub-range start strictly inside the data so Previous fill must
        // seed from the last point before the range.
        Query::range("metric.0", Timestamp(7_200), Timestamp(HORIZON)).downsample(ds(
            ROLLUP,
            Aggregator::Max,
            FillPolicy::Previous,
        )),
        full()
            .aggregate(Aggregator::Min)
            .downsample(ds(ROLLUP, Aggregator::Min, FillPolicy::None)),
        full().downsample(ds(ROLLUP, Aggregator::Count, FillPolicy::Zero)),
        // Interval does not match the rollup layout: always raw-decoded.
        full().downsample(ds(Span::minutes(7), Aggregator::Avg, FillPolicy::Previous)),
        // Order-sensitive bucket aggregator: never rollup-servable.
        full().downsample(ds(ROLLUP, Aggregator::P95, FillPolicy::None)),
        Query::range("metric.1", Timestamp(0), Timestamp(HORIZON))
            .as_rate()
            .downsample(ds(ROLLUP, Aggregator::Avg, FillPolicy::None)),
        // Narrow window: exercises the block index skip path.
        Query::range("metric.1", Timestamp(600), Timestamp(1_800)).downsample(ds(
            ROLLUP,
            Aggregator::Last,
            FillPolicy::None,
        )),
    ]
}

proptest! {
    /// Replay an arbitrary op sequence; after every op, every query shape
    /// must answer byte-identically under the full and raw policies, and a
    /// cache-hot repeat must not change the answer.
    #[test]
    fn full_serving_stack_matches_raw_decode(
        ops in proptest::collection::vec(op_strategy(), 1..12),
        shards in 1usize..5,
    ) {
        let db = ShardedTsdb::with_layout(shards, 16, ROLLUP);
        for op in &ops {
            match op {
                Op::PutBatch(specs) => {
                    let batch: Vec<DataPoint> = specs
                        .iter()
                        .map(|&(m, d, t, v)| build_point(m, d, t, v))
                        .collect();
                    db.put_batch(&batch);
                }
                Op::SealAll => db.seal_all(),
                // Retention may legitimately report a corrupt straddling
                // chunk after FlipBit; equivalence must hold either way.
                Op::EvictBefore(cutoff) => {
                    let _ = db.evict_before(Timestamp(*cutoff));
                }
                Op::FlipBit(nth, bit) => {
                    db.flip_chunk_bit(*nth, *bit);
                }
            }
            for q in queries() {
                let raw = db.execute_with(&q, ServePolicy::raw());
                let full = db.execute_with(&q, ServePolicy::full());
                prop_assert_eq!(&full, &raw, "policy diverged on {:?} after {:?}", q, op);
                let cached = db.execute_with(&q, ServePolicy::full());
                prop_assert_eq!(&cached, &raw, "cache-hot repeat diverged on {:?}", q);
            }
        }
        // The workload above must actually exercise the cache.
        prop_assert!(db.cache_stats().misses > 0);
    }
}
