//! Property: an N-shard [`ShardedTsdb`] is observationally identical to a
//! 1-shard store for *any* interleaving of batched writes, retention
//! sweeps, point reads, and queries. Sharding is a physical layout choice;
//! it must never leak into results.

use ctt_core::time::{Span, Timestamp};
use ctt_tsdb::{Aggregator, DataPoint, Downsample, FillPolicy, Query, ShardedTsdb, TagSet};
use proptest::prelude::*;

/// One step of an interleaved workload, applied to both stores.
#[derive(Debug, Clone)]
enum Op {
    /// Write a batch of points (metric idx, device idx, time, value).
    PutBatch(Vec<(u8, u8, i64, f64)>),
    /// Drop everything strictly before the cutoff.
    EvictBefore(i64),
    /// Force-seal open buffers.
    SealAll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => proptest::collection::vec(
            (0u8..3, 0u8..5, 0i64..50_000, -1e6f64..1e6),
            1..40
        )
        .prop_map(Op::PutBatch),
        1 => (0i64..50_000).prop_map(Op::EvictBefore),
        1 => Just(Op::SealAll),
    ]
}

fn metric_name(m: u8) -> String {
    format!("metric.{m}")
}

fn build_point(m: u8, d: u8, t: i64, v: f64) -> DataPoint {
    DataPoint::new(
        metric_name(m),
        vec![("device".to_string(), format!("node{d}"))],
        Timestamp(t),
        v,
    )
    .expect("valid point")
}

fn queries() -> Vec<Query> {
    let full = || Query::range("metric.0", Timestamp(0), Timestamp(50_000));
    vec![
        full(),
        full().group_by("device"),
        full().aggregate(Aggregator::Avg),
        full().aggregate(Aggregator::P95),
        full().aggregate(Aggregator::Sum).downsample(Downsample {
            interval: Span::minutes(10),
            aggregator: Aggregator::Avg,
            fill: FillPolicy::None,
        }),
        Query::range("metric.1", Timestamp(1_000), Timestamp(30_000)).aggregate(Aggregator::Max),
        Query::range("metric.2", Timestamp(0), Timestamp(50_000)).as_rate(),
    ]
}

proptest! {
    /// Replay an arbitrary op sequence against a 1-shard and an N-shard
    /// store; every observable (stats totals, metric list, per-series
    /// reads, query results) must be byte-identical.
    #[test]
    fn sharded_store_is_observationally_equal_to_flat(
        ops in proptest::collection::vec(op_strategy(), 1..25),
        shards in 2usize..9,
    ) {
        let flat = ShardedTsdb::with_chunk_size(1, 16);
        let sharded = ShardedTsdb::with_chunk_size(shards, 16);
        for op in &ops {
            match op {
                Op::PutBatch(specs) => {
                    let batch: Vec<DataPoint> = specs
                        .iter()
                        .map(|&(m, d, t, v)| build_point(m, d, t, v))
                        .collect();
                    let a = flat.put_batch(&batch);
                    let b = sharded.put_batch(&batch);
                    prop_assert_eq!(a, b, "write counts diverged");
                }
                Op::EvictBefore(cutoff) => {
                    let a = flat.evict_before(Timestamp(*cutoff));
                    let b = sharded.evict_before(Timestamp(*cutoff));
                    prop_assert_eq!(a, b, "evicted counts diverged");
                }
                Op::SealAll => {
                    flat.seal_all();
                    sharded.seal_all();
                }
            }
        }

        // Stats totals agree (chunk/byte counts may differ by layout, but
        // logical contents may not).
        prop_assert_eq!(flat.stats().points, sharded.stats().points);
        prop_assert_eq!(flat.stats().series, sharded.stats().series);
        prop_assert_eq!(flat.metrics(), sharded.metrics());

        // Every individual series reads back identically.
        for m in 0..3u8 {
            for d in 0..5u8 {
                let tags: TagSet =
                    [("device".to_string(), format!("node{d}"))].into();
                let a = flat.read_series(
                    &metric_name(m), &tags, Timestamp(0), Timestamp(i64::MAX));
                let b = sharded.read_series(
                    &metric_name(m), &tags, Timestamp(0), Timestamp(i64::MAX));
                prop_assert_eq!(a, b, "series m={} d={} diverged", m, d);
            }
        }

        // Every query shape returns identical results.
        for q in queries() {
            let a = flat.execute(&q);
            let b = sharded.execute(&q);
            prop_assert_eq!(a, b, "query diverged: {:?}", q);
        }
    }
}
