//! Concurrent-writer stress: many threads hammer a shared [`ShardedTsdb`]
//! through `put_batch` while readers run queries and integrity scans. The
//! locks must neither lose writes nor deadlock, and the final contents must
//! equal a serial reference ingest of the same points.

use ctt_core::time::Timestamp;
use ctt_tsdb::{DataPoint, Query, ShardedTsdb, TagSet};
use std::sync::Arc;

fn writer_points(writer: usize, points: i64) -> Vec<DataPoint> {
    (0..points)
        .map(|i| {
            DataPoint::new(
                "stress.metric",
                vec![("device".to_string(), format!("w{writer}"))],
                Timestamp(i * 60),
                writer as f64 * 1000.0 + i as f64,
            )
            .expect("valid point")
        })
        .collect()
}

#[test]
fn concurrent_writers_do_not_lose_or_duplicate_points() {
    const WRITERS: usize = 8;
    const POINTS: i64 = 500;
    const BATCH: usize = 50;

    let db = Arc::new(ShardedTsdb::with_chunk_size(4, 32));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let pts = writer_points(w, POINTS);
                let mut written = 0u64;
                for chunk in pts.chunks(BATCH) {
                    written += db.put_batch(chunk);
                }
                written
            })
        })
        .collect();

    // Concurrent readers: queries and scans while writes are in flight
    // must not deadlock or observe torn state (each sees some consistent
    // prefix of the writes).
    let reader = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            for _ in 0..50 {
                // Scan before stats: points only grow in this test, so a
                // scan snapshot never exceeds a later stats snapshot (the
                // two calls are not atomic across shards).
                let scan = db.integrity_scan();
                let st = db.stats();
                assert!(scan.readable_points + scan.quarantined_points <= st.points);
                let q = Query::range("stress.metric", Timestamp(0), Timestamp(i64::MAX));
                let _ = db.execute(&q);
                std::thread::yield_now();
            }
        })
    };

    let mut total = 0u64;
    for h in handles {
        total += h.join().expect("writer panicked");
    }
    reader.join().expect("reader panicked");

    assert_eq!(total, (WRITERS as u64) * (POINTS as u64));
    let st = db.stats();
    assert_eq!(st.points, total, "store lost or duplicated points");
    assert_eq!(st.series, WRITERS, "one series per writer expected");

    // Contents match a serial reference ingest exactly.
    let reference = ShardedTsdb::with_chunk_size(1, 32);
    for w in 0..WRITERS {
        reference.put_batch(&writer_points(w, POINTS));
    }
    for w in 0..WRITERS {
        let tags: TagSet = [("device".to_string(), format!("w{w}"))].into();
        let got = db.read_series("stress.metric", &tags, Timestamp(0), Timestamp(i64::MAX));
        let want = reference.read_series("stress.metric", &tags, Timestamp(0), Timestamp(i64::MAX));
        assert_eq!(got, want, "writer {w} series diverged from serial ingest");
    }
}

#[test]
fn concurrent_writers_with_interleaved_eviction() {
    const WRITERS: usize = 4;
    let db = Arc::new(ShardedTsdb::with_chunk_size(4, 16));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for chunk in writer_points(w, 300).chunks(25) {
                    db.put_batch(chunk);
                }
            })
        })
        .collect();
    // Evictions race with the writers; they must stay panic-free and
    // keep the store consistent.
    for cutoff in [1_000i64, 5_000, 9_000] {
        let _ = db.evict_before(Timestamp(cutoff));
    }
    for h in handles {
        h.join().expect("writer panicked");
    }
    // Final sweep removes everything below the last cutoff deterministically.
    db.evict_before(Timestamp(9_000)).expect("evict");
    let st = db.stats();
    // Each writer wrote times 0..300*60; at least points >= 9000/60 survive.
    let survivors_per_writer = 300 - 9_000 / 60;
    assert_eq!(st.points, (WRITERS as u64) * survivors_per_writer as u64);
    let scan = db.integrity_scan();
    assert_eq!(scan.readable_points + scan.quarantined_points, st.points);
}
