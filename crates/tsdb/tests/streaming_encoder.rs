//! Property: the streaming Gorilla appender — incremental `append` with
//! checkpoint/restore for last-write-wins duplicates and chunk cuts — emits
//! *exactly* the bytes a whole-chunk re-encode of the same logical points
//! would. This is the invariant that lets the store's seal path skip the
//! bitstream re-walk: if it ever drifted, sealed chunks (and everything
//! hashed or golden-pinned downstream) would silently change shape.
//!
//! The workload deliberately covers the encoder's awkward corners: NaN
//! values (bit-exact XOR round-trip), duplicate timestamps (rewind +
//! re-append), and negative timestamps (raw 64-bit first sample).

use ctt_core::time::Timestamp;
use ctt_tsdb::{CompressedChunk, GorillaEncoder};
use proptest::prelude::*;

/// One generated series: a start instant (possibly negative), then a run
/// of (delta-seconds, value) steps. Delta 0 produces duplicate timestamps.
fn series_strategy() -> impl Strategy<Value = (i64, Vec<(i64, f64)>)> {
    let value = prop_oneof![
        8 => -1e9f64..1e9,
        1 => Just(f64::NAN),
        1 => Just(-0.0f64),
    ];
    (
        -50_000i64..50_000,
        proptest::collection::vec((0i64..600, value), 1..40),
    )
}

/// Materialize a series spec into non-decreasing (timestamp, value) points.
fn points_of(start: i64, steps: &[(i64, f64)]) -> Vec<(i64, f64)> {
    let mut t = start;
    steps
        .iter()
        .map(|&(dt, v)| {
            t += dt;
            (t, v)
        })
        .collect()
}

/// The logical content after last-write-wins on duplicate timestamps.
fn dedup_lww(points: &[(i64, f64)]) -> Vec<(i64, f64)> {
    let mut out: Vec<(i64, f64)> = Vec::new();
    for &(t, v) in points {
        match out.last_mut() {
            Some(last) if last.0 == t => last.1 = v,
            _ => out.push((t, v)),
        }
    }
    out
}

/// Encode a point slice in one pass — the re-encode reference.
fn encode_whole(points: &[(i64, f64)]) -> CompressedChunk {
    let mut enc = GorillaEncoder::new();
    for &(t, v) in points {
        enc.append(Timestamp(t), v);
    }
    enc.finish()
}

proptest! {
    /// ~100 series per case: streaming bytes == whole-chunk re-encode of
    /// the deduplicated content, and NaN round-trips bit-exactly.
    #[test]
    fn streaming_appender_matches_whole_chunk_reencode(
        specs in proptest::collection::vec(series_strategy(), 100..101),
    ) {
        for (start, steps) in &specs {
            let points = points_of(*start, steps);
            let logical = dedup_lww(&points);
            let streamed = {
                let mut enc = GorillaEncoder::new();
                let mut before_last = enc.checkpoint();
                let mut last_ts: Option<i64> = None;
                for &(t, v) in &points {
                    if last_ts == Some(t) {
                        enc.restore(&before_last);
                    } else {
                        before_last = enc.checkpoint();
                        last_ts = Some(t);
                    }
                    enc.append(Timestamp(t), v);
                }
                enc.finish()
            };
            let reference = encode_whole(&logical);
            prop_assert_eq!(
                streamed.to_bytes(),
                reference.to_bytes(),
                "streaming bytes diverged from re-encode (start={}, {} raw / {} logical points)",
                start, points.len(), logical.len()
            );
            // And the bytes decode back to the logical content, NaN
            // bit-patterns included.
            let decoded = streamed.decode();
            prop_assert!(decoded.is_ok(), "streamed chunk failed to decode");
            let decoded = decoded.unwrap_or_default();
            prop_assert_eq!(decoded.len(), logical.len());
            for (d, l) in decoded.iter().zip(&logical) {
                prop_assert_eq!(d.0, Timestamp(l.0));
                prop_assert_eq!(d.1.to_bits(), l.1.to_bits(), "value bits diverged");
            }
        }
    }

    /// A cut checkpoint taken mid-stream seals to exactly the bytes of
    /// whole-encoding the prefix — the seal path's "no re-walk" guarantee.
    #[test]
    fn cut_checkpoint_seals_prefix_byte_identically(
        spec in series_strategy(),
        cut_seed in 0usize..40,
    ) {
        let (start, steps) = spec;
        let points = points_of(start, &steps);
        let logical = dedup_lww(&points);
        let cut = cut_seed % logical.len().max(1);
        // Stream with the cut checkpoint captured at logical index `cut`.
        let mut enc = GorillaEncoder::new();
        let mut before_last = enc.checkpoint();
        let mut last_ts: Option<i64> = None;
        let mut cut_ck = None;
        for &(t, v) in &points {
            if last_ts == Some(t) {
                enc.restore(&before_last);
            } else {
                if enc.count() as usize == cut && cut_ck.is_none() {
                    cut_ck = Some(enc.checkpoint());
                }
                before_last = enc.checkpoint();
                last_ts = Some(t);
            }
            enc.append(Timestamp(t), v);
        }
        if let Some(ck) = cut_ck {
            enc.restore(&ck);
            let prefix = enc.finish();
            let reference = encode_whole(logical.get(..cut).unwrap_or_default());
            prop_assert_eq!(
                prefix.to_bytes(),
                reference.to_bytes(),
                "cut at {} diverged from prefix re-encode", cut
            );
        }
    }
}
