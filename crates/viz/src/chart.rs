//! Time-series line charts and scatter plots with axes and legends.
//!
//! These implement the chart shapes of Figs. 4 and 5: multi-series lines
//! over time, and category-coloured scatter plots (battery delta vs time
//! of day, coloured by sunlight).

use crate::color;
use crate::scale::{LinearScale, TimeScale};
use crate::svg::{Anchor, Canvas};
use ctt_core::measurement::Series;
use ctt_core::time::Timestamp;

/// Chart margins in pixels.
const MARGIN_LEFT: f64 = 56.0;
const MARGIN_RIGHT: f64 = 16.0;
const MARGIN_TOP: f64 = 34.0;
const MARGIN_BOTTOM: f64 = 40.0;

/// A named series for a line chart.
#[derive(Debug, Clone)]
pub struct NamedSeries {
    /// Legend label.
    pub name: String,
    /// The data.
    pub series: Series,
    /// Hex colour; auto-assigned if empty.
    pub color: String,
}

/// A time-series line chart.
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// Y-axis label (with unit).
    pub y_label: String,
    /// Series to draw.
    pub series: Vec<NamedSeries>,
    /// Canvas size.
    pub width: f64,
    /// Canvas height.
    pub height: f64,
}

impl LineChart {
    /// New chart with default size.
    pub fn new(title: impl Into<String>, y_label: impl Into<String>) -> Self {
        LineChart {
            title: title.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            width: 720.0,
            height: 300.0,
        }
    }

    /// Add a series (colour auto-assigned).
    pub fn add(&mut self, name: impl Into<String>, series: Series) -> &mut Self {
        let color = color::category(self.series.len()).to_string();
        self.series.push(NamedSeries {
            name: name.into(),
            series,
            color,
        });
        self
    }

    /// Render to an SVG string.
    pub fn render(&self) -> String {
        self.render_canvas().finish()
    }

    /// Render to a canvas (for dashboard embedding).
    pub fn render_canvas(&self) -> Canvas {
        let mut c = Canvas::new(self.width, self.height);
        c.background("#ffffff");
        c.text(
            self.width / 2.0,
            18.0,
            13.0,
            "#222222",
            Anchor::Middle,
            &self.title,
        );
        let plot_x0 = MARGIN_LEFT;
        let plot_x1 = self.width - MARGIN_RIGHT;
        let plot_y0 = self.height - MARGIN_BOTTOM;
        let plot_y1 = MARGIN_TOP;
        // Domains.
        let all_times: Vec<Timestamp> = self.series.iter().flat_map(|s| s.series.times()).collect();
        let (t0, t1) = match (all_times.iter().min(), all_times.iter().max()) {
            (Some(&a), Some(&b)) if a < b => (a, b),
            (Some(&a), _) => (a, Timestamp(a.as_seconds() + 1)),
            _ => (Timestamp(0), Timestamp(1)),
        };
        let xs = TimeScale::new(t0, t1, plot_x0, plot_x1);
        let ys = LinearScale::fit(
            self.series.iter().flat_map(|s| s.series.values()),
            0.08,
            plot_y0,
            plot_y1,
        );
        // Axes.
        c.line(plot_x0, plot_y0, plot_x1, plot_y0, "#444444", 1.0);
        c.line(plot_x0, plot_y0, plot_x0, plot_y1, "#444444", 1.0);
        for (t, label) in xs.ticks(8) {
            let x = xs.map(t);
            c.line(x, plot_y0, x, plot_y0 + 4.0, "#444444", 1.0);
            c.text(x, plot_y0 + 16.0, 10.0, "#444444", Anchor::Middle, &label);
        }
        for v in ys.ticks(6) {
            let y = ys.map(v);
            c.dashed_line(plot_x0, y, plot_x1, y, "#dddddd", 0.6);
            c.text(
                plot_x0 - 6.0,
                y + 3.0,
                10.0,
                "#444444",
                Anchor::End,
                &format_tick(v),
            );
        }
        c.text(
            14.0,
            (plot_y0 + plot_y1) / 2.0,
            11.0,
            "#333333",
            Anchor::Middle,
            &self.y_label,
        );
        // Series.
        for s in &self.series {
            let pts: Vec<(f64, f64)> = s
                .series
                .points
                .iter()
                .map(|&(t, v)| (xs.map(t), ys.map(v)))
                .collect();
            c.polyline(&pts, &s.color, 1.4);
        }
        // Legend.
        let mut lx = plot_x0 + 8.0;
        for s in &self.series {
            c.rect(lx, plot_y1 - 10.0, 10.0, 4.0, &s.color, None);
            c.text(
                lx + 14.0,
                plot_y1 - 5.0,
                10.0,
                "#333333",
                Anchor::Start,
                &s.name,
            );
            lx += 14.0 + 7.0 * s.name.len() as f64 + 16.0;
        }
        c
    }
}

fn format_tick(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 10.0 || v == 0.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.2}", v)
    }
}

/// One scatter point with a category (e.g. sunlit vs dark in Fig. 4 right).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// X value.
    pub x: f64,
    /// Y value.
    pub y: f64,
    /// Category index (colours/legend).
    pub category: usize,
}

/// A category-coloured scatter plot.
#[derive(Debug, Clone)]
pub struct ScatterChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Category names (legend), indexed by `ScatterPoint::category`.
    pub categories: Vec<String>,
    /// Category colours; defaults applied when empty.
    pub colors: Vec<String>,
    /// Points.
    pub points: Vec<ScatterPoint>,
    /// Canvas size.
    pub width: f64,
    /// Canvas height.
    pub height: f64,
}

impl ScatterChart {
    /// New scatter chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        categories: Vec<String>,
    ) -> Self {
        let colors = (0..categories.len())
            .map(|i| color::category(i).to_string())
            .collect();
        ScatterChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            categories,
            colors,
            points: Vec::new(),
            width: 480.0,
            height: 300.0,
        }
    }

    /// Add one point.
    pub fn push(&mut self, x: f64, y: f64, category: usize) {
        assert!(
            category < self.categories.len(),
            "unknown category {category}"
        );
        self.points.push(ScatterPoint { x, y, category });
    }

    /// Render to SVG.
    pub fn render(&self) -> String {
        self.render_canvas().finish()
    }

    /// Render to a canvas.
    pub fn render_canvas(&self) -> Canvas {
        let mut c = Canvas::new(self.width, self.height);
        c.background("#ffffff");
        c.text(
            self.width / 2.0,
            18.0,
            13.0,
            "#222222",
            Anchor::Middle,
            &self.title,
        );
        let plot_x0 = MARGIN_LEFT;
        let plot_x1 = self.width - MARGIN_RIGHT;
        let plot_y0 = self.height - MARGIN_BOTTOM;
        let plot_y1 = MARGIN_TOP;
        let xs = LinearScale::fit(self.points.iter().map(|p| p.x), 0.05, plot_x0, plot_x1);
        let ys = LinearScale::fit(self.points.iter().map(|p| p.y), 0.08, plot_y0, plot_y1);
        c.line(plot_x0, plot_y0, plot_x1, plot_y0, "#444444", 1.0);
        c.line(plot_x0, plot_y0, plot_x0, plot_y1, "#444444", 1.0);
        for v in xs.ticks(8) {
            let x = xs.map(v);
            c.line(x, plot_y0, x, plot_y0 + 4.0, "#444444", 1.0);
            c.text(
                x,
                plot_y0 + 16.0,
                10.0,
                "#444444",
                Anchor::Middle,
                &format_tick(v),
            );
        }
        for v in ys.ticks(6) {
            let y = ys.map(v);
            c.dashed_line(plot_x0, y, plot_x1, y, "#dddddd", 0.6);
            c.text(
                plot_x0 - 6.0,
                y + 3.0,
                10.0,
                "#444444",
                Anchor::End,
                &format_tick(v),
            );
        }
        c.text(
            (plot_x0 + plot_x1) / 2.0,
            self.height - 8.0,
            11.0,
            "#333333",
            Anchor::Middle,
            &self.x_label,
        );
        c.text(
            14.0,
            (plot_y0 + plot_y1) / 2.0,
            11.0,
            "#333333",
            Anchor::Middle,
            &self.y_label,
        );
        // Zero line if the y domain crosses zero.
        if ys.d0 < 0.0 && ys.d1 > 0.0 {
            let y = ys.map(0.0);
            c.line(plot_x0, y, plot_x1, y, "#999999", 0.8);
        }
        for p in &self.points {
            c.circle(
                xs.map(p.x),
                ys.map(p.y),
                2.2,
                &self.colors[p.category],
                None,
            );
        }
        // Legend.
        let mut lx = plot_x0 + 8.0;
        for (i, name) in self.categories.iter().enumerate() {
            c.circle(lx, plot_y1 - 8.0, 4.0, &self.colors[i], None);
            c.text(
                lx + 8.0,
                plot_y1 - 5.0,
                10.0,
                "#333333",
                Anchor::Start,
                name,
            );
            lx += 8.0 + 7.0 * name.len() as f64 + 18.0;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctt_core::time::Span;

    fn series(n: i64) -> Series {
        Series::from_points(
            (0..n)
                .map(|i| (Timestamp(0) + Span::minutes(5 * i), (i as f64 * 0.3).sin()))
                .collect(),
        )
    }

    #[test]
    fn line_chart_renders_series_and_legend() {
        let mut ch = LineChart::new("CO₂ dynamics", "ppm");
        ch.add("sensor", series(100));
        ch.add("reference", series(80));
        let svg = ch.render();
        assert!(svg.contains("<svg"));
        assert!(svg.contains("CO₂ dynamics"));
        assert!(svg.contains("ppm"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("sensor") && svg.contains("reference"));
        // Distinct auto colours.
        assert_ne!(ch.series[0].color, ch.series[1].color);
    }

    #[test]
    fn line_chart_empty_series_ok() {
        let mut ch = LineChart::new("empty", "x");
        ch.add("none", Series::new());
        let svg = ch.render();
        assert!(svg.contains("<svg"));
        assert!(!svg.contains("<polyline"));
    }

    #[test]
    fn line_chart_single_point_ok() {
        let mut ch = LineChart::new("one", "x");
        ch.add("pt", series(1));
        let svg = ch.render();
        assert!(svg.contains("<svg"));
    }

    #[test]
    fn scatter_renders_categories() {
        let mut sc = ScatterChart::new(
            "Battery delta vs time of day",
            "hour of day",
            "Δ battery [%]",
            vec!["dark".to_string(), "sunlit".to_string()],
        );
        for i in 0..48 {
            sc.push(
                f64::from(i) / 2.0,
                (f64::from(i) * 0.7).sin(),
                (i % 2) as usize,
            );
        }
        let svg = sc.render();
        assert!(svg.contains("Battery delta"));
        assert!(svg.contains("hour of day"));
        assert!(svg.matches("<circle").count() >= 48);
        assert!(svg.contains("sunlit"));
    }

    #[test]
    fn scatter_zero_line_when_crossing() {
        let mut sc = ScatterChart::new("t", "x", "y", vec!["a".to_string()]);
        sc.push(0.0, -1.0, 0);
        sc.push(1.0, 1.0, 0);
        let svg = sc.render();
        // A horizontal rule at zero is present (heuristic: at least 3 solid
        // lines — two axes + zero line).
        assert!(svg.matches("<line").count() >= 3);
    }

    #[test]
    #[should_panic(expected = "unknown category")]
    fn scatter_rejects_bad_category() {
        let mut sc = ScatterChart::new("t", "x", "y", vec!["a".to_string()]);
        sc.push(0.0, 0.0, 5);
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(1234.0), "1234");
        assert_eq!(format_tick(12.34), "12.3");
        assert_eq!(format_tick(1.234), "1.23");
        assert_eq!(format_tick(0.0), "0.0");
    }
}
