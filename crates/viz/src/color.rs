//! Colour palettes and value ramps.

/// Categorical palette (colour-blind-safe Okabe–Ito order).
pub const CATEGORY: [&str; 8] = [
    "#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9", "#F0E442", "#000000",
];

/// Colour for a categorical index (wraps).
pub fn category(i: usize) -> &'static str {
    CATEGORY[i % CATEGORY.len()]
}

/// Parse `#rrggbb` to components.
fn parse_hex(c: &str) -> (u8, u8, u8) {
    let h = c.trim_start_matches('#');
    (
        u8::from_str_radix(&h[0..2], 16).unwrap_or(0),
        u8::from_str_radix(&h[2..4], 16).unwrap_or(0),
        u8::from_str_radix(&h[4..6], 16).unwrap_or(0),
    )
}

fn to_hex(r: u8, g: u8, b: u8) -> String {
    format!("#{r:02x}{g:02x}{b:02x}")
}

/// Interpolate between two hex colours, `t` in [0, 1].
pub fn lerp(a: &str, b: &str, t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    let (ar, ag, ab) = parse_hex(a);
    let (br, bg, bb) = parse_hex(b);
    let mix = |x: u8, y: u8| (f64::from(x) + (f64::from(y) - f64::from(x)) * t).round() as u8;
    to_hex(mix(ar, br), mix(ag, bg), mix(ab, bb))
}

/// Multi-stop sequential ramp (cold → hot) for pollution intensity.
const RAMP: [&str; 5] = ["#2c7bb6", "#abd9e9", "#ffffbf", "#fdae61", "#d7191c"];

/// Map `t` in [0, 1] through the sequential ramp.
pub fn ramp(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    let scaled = t * (RAMP.len() - 1) as f64;
    let i = (scaled.floor() as usize).min(RAMP.len() - 2);
    lerp(RAMP[i], RAMP[i + 1], scaled - i as f64)
}

/// Scale a hex colour's brightness by `f` (0..1 darkens).
pub fn shade(c: &str, f: f64) -> String {
    let (r, g, b) = parse_hex(c);
    let s = |x: u8| ((f64::from(x)) * f.clamp(0.0, 1.0)).round() as u8;
    to_hex(s(r), s(g), s(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_wrap() {
        assert_eq!(category(0), CATEGORY[0]);
        assert_eq!(category(8), CATEGORY[0]);
        assert_eq!(category(9), CATEGORY[1]);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        assert_eq!(lerp("#000000", "#ffffff", 0.0), "#000000");
        assert_eq!(lerp("#000000", "#ffffff", 1.0), "#ffffff");
        assert_eq!(lerp("#000000", "#ffffff", 0.5), "#808080");
        // Clamped.
        assert_eq!(lerp("#000000", "#ffffff", 2.0), "#ffffff");
    }

    #[test]
    fn ramp_endpoints() {
        assert_eq!(ramp(0.0), RAMP[0]);
        assert_eq!(ramp(1.0), RAMP[RAMP.len() - 1]);
        // Midpoints produce valid hex.
        for i in 0..=10 {
            let c = ramp(f64::from(i) / 10.0);
            assert!(c.starts_with('#') && c.len() == 7, "{c}");
        }
    }

    #[test]
    fn shading_darkens() {
        assert_eq!(shade("#808080", 0.5), "#404040");
        assert_eq!(shade("#ffffff", 0.0), "#000000");
        assert_eq!(shade("#123456", 1.0), "#123456");
    }
}
