//! Dashboard and wall-display composition (Figs. 6 and 8).
//!
//! A [`Dashboard`] arranges pre-rendered panels (charts, maps, stat tiles,
//! alarm lists) on a grid — the Zeppelin dashboard of Fig. 6 and, at
//! larger scale, the "full network and data overview wall display" of
//! Fig. 8.

use crate::svg::{Anchor, Canvas};

/// A stat tile: one headline number with a label (top row of Fig. 6).
#[derive(Debug, Clone)]
pub struct StatTile {
    /// Caption.
    pub label: String,
    /// The value, pre-formatted.
    pub value: String,
    /// Accent colour.
    pub color: String,
}

impl StatTile {
    /// Render at a given size.
    pub fn render_canvas(&self, width: f64, height: f64) -> Canvas {
        let mut c = Canvas::new(width, height);
        c.background("#ffffff");
        c.rect(0.0, 0.0, width, 4.0, &self.color, None);
        c.text(
            width / 2.0,
            height * 0.55,
            24.0,
            "#111111",
            Anchor::Middle,
            &self.value,
        );
        c.text(
            width / 2.0,
            height * 0.85,
            11.0,
            "#666666",
            Anchor::Middle,
            &self.label,
        );
        c
    }
}

/// An alarm-list panel (part of the Fig. 8 wall).
#[derive(Debug, Clone)]
pub struct AlarmList {
    /// Title.
    pub title: String,
    /// Rows: (severity colour, text).
    pub rows: Vec<(String, String)>,
}

impl AlarmList {
    /// Render at a given size; overflowing rows are summarised.
    pub fn render_canvas(&self, width: f64, height: f64) -> Canvas {
        let mut c = Canvas::new(width, height);
        c.background("#ffffff");
        c.text(10.0, 20.0, 13.0, "#222222", Anchor::Start, &self.title);
        let row_h = 18.0;
        let max_rows = ((height - 40.0) / row_h) as usize;
        for (i, (color, text)) in self.rows.iter().take(max_rows).enumerate() {
            let y = 40.0 + i as f64 * row_h;
            c.circle(14.0, y - 4.0, 5.0, color, None);
            c.text(26.0, y, 11.0, "#333333", Anchor::Start, text);
        }
        if self.rows.len() > max_rows {
            c.text(
                26.0,
                40.0 + max_rows as f64 * row_h,
                11.0,
                "#999999",
                Anchor::Start,
                &format!("… and {} more", self.rows.len() - max_rows),
            );
        }
        if self.rows.is_empty() {
            c.text(
                26.0,
                44.0,
                11.0,
                "#2ca02c",
                Anchor::Start,
                "no active alarms",
            );
        }
        c
    }
}

/// One dashboard panel: a pre-rendered canvas placed on the grid.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Grid column (0-based).
    pub col: u32,
    /// Grid row (0-based).
    pub row: u32,
    /// Column span.
    pub col_span: u32,
    /// Row span.
    pub row_span: u32,
    /// The content.
    pub content: Canvas,
}

/// A grid dashboard.
#[derive(Debug, Clone)]
pub struct Dashboard {
    /// Title bar text.
    pub title: String,
    /// Grid columns.
    pub cols: u32,
    /// Grid rows.
    pub rows: u32,
    /// Cell size in pixels.
    pub cell_w: f64,
    /// Cell height in pixels.
    pub cell_h: f64,
    /// Panels.
    pub panels: Vec<Panel>,
}

/// Pixel gap between panels.
const GAP: f64 = 10.0;
/// Title bar height.
const TITLE_H: f64 = 36.0;

impl Dashboard {
    /// New dashboard with a `cols × rows` grid of `cell_w × cell_h` cells.
    pub fn new(title: impl Into<String>, cols: u32, rows: u32, cell_w: f64, cell_h: f64) -> Self {
        assert!(cols > 0 && rows > 0);
        Dashboard {
            title: title.into(),
            cols,
            rows,
            cell_w,
            cell_h,
            panels: Vec::new(),
        }
    }

    /// Place a panel; panics if it falls outside the grid.
    pub fn place(&mut self, col: u32, row: u32, col_span: u32, row_span: u32, content: Canvas) {
        assert!(
            col + col_span <= self.cols && row + row_span <= self.rows,
            "panel at ({col},{row}) span ({col_span},{row_span}) exceeds {}x{} grid",
            self.cols,
            self.rows
        );
        assert!(col_span > 0 && row_span > 0);
        self.panels.push(Panel {
            col,
            row,
            col_span,
            row_span,
            content,
        });
    }

    /// Pixel size of a span of cells.
    pub fn span_size(&self, col_span: u32, row_span: u32) -> (f64, f64) {
        (
            f64::from(col_span) * self.cell_w + f64::from(col_span - 1) * GAP,
            f64::from(row_span) * self.cell_h + f64::from(row_span - 1) * GAP,
        )
    }

    /// Total canvas size.
    pub fn size(&self) -> (f64, f64) {
        let (w, h) = self.span_size(self.cols, self.rows);
        (w + 2.0 * GAP, h + 2.0 * GAP + TITLE_H)
    }

    /// Render the dashboard.
    pub fn render(&self) -> String {
        let (w, h) = self.size();
        let mut c = Canvas::new(w, h);
        c.background("#e8eaed");
        c.rect(0.0, 0.0, w, TITLE_H, "#1f3044", None);
        c.text(
            12.0,
            TITLE_H - 12.0,
            16.0,
            "#ffffff",
            Anchor::Start,
            &self.title,
        );
        for p in &self.panels {
            let x = GAP + f64::from(p.col) * (self.cell_w + GAP);
            let y = TITLE_H + GAP + f64::from(p.row) * (self.cell_h + GAP);
            let (pw, ph) = self.span_size(p.col_span, p.row_span);
            c.rect(
                x - 1.0,
                y - 1.0,
                pw + 2.0,
                ph + 2.0,
                "#ffffff",
                Some(("#c5c9ce", 1.0)),
            );
            c.embed(x, y, &p.content);
        }
        c.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(label: &str) -> Canvas {
        StatTile {
            label: label.to_string(),
            value: "42".to_string(),
            color: "#0072B2".to_string(),
        }
        .render_canvas(200.0, 100.0)
    }

    #[test]
    fn stat_tile_contents() {
        let svg = tile("sensors online").finish();
        assert!(svg.contains("42"));
        assert!(svg.contains("sensors online"));
    }

    #[test]
    fn dashboard_layout() {
        let mut d = Dashboard::new("CTT air quality", 3, 2, 200.0, 100.0);
        d.place(0, 0, 1, 1, tile("a"));
        d.place(1, 0, 2, 1, tile("b"));
        d.place(0, 1, 3, 1, tile("c"));
        let svg = d.render();
        assert!(svg.contains("CTT air quality"));
        assert_eq!(svg.matches("translate(").count(), 3);
        let (w, h) = d.size();
        assert!(w > 3.0 * 200.0);
        assert!(h > 2.0 * 100.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn panel_outside_grid_panics() {
        let mut d = Dashboard::new("x", 2, 2, 100.0, 100.0);
        d.place(1, 1, 2, 1, tile("too wide"));
    }

    #[test]
    fn alarm_list_rows_and_overflow() {
        let list = AlarmList {
            title: "Active alarms".to_string(),
            rows: (0..20)
                .map(|i| ("#d7191c".to_string(), format!("alarm {i}")))
                .collect(),
        };
        let svg = list.render_canvas(300.0, 150.0).finish();
        assert!(svg.contains("Active alarms"));
        assert!(svg.contains("alarm 0"));
        assert!(svg.contains("more"), "overflow summary missing");
        // Empty list case.
        let empty = AlarmList {
            title: "Active alarms".to_string(),
            rows: vec![],
        };
        let svg = empty.render_canvas(300.0, 150.0).finish();
        assert!(svg.contains("no active alarms"));
    }

    #[test]
    fn span_size_accounts_for_gaps() {
        let d = Dashboard::new("x", 4, 4, 100.0, 50.0);
        assert_eq!(d.span_size(1, 1), (100.0, 50.0));
        assert_eq!(d.span_size(2, 1).0, 210.0);
        assert_eq!(d.span_size(1, 3).1, 170.0);
    }
}
