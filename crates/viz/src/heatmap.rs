//! Grid heatmaps: pollution surfaces and hour-of-day × day matrices.

use crate::color;
use crate::svg::{Anchor, Canvas};

/// A grid heatmap. Cell values are normalized against the provided range
/// and mapped through the sequential colour ramp; `None` cells are blank.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Title.
    pub title: String,
    /// Legend label for the value axis.
    pub value_label: String,
    /// Columns.
    pub cols: usize,
    /// Rows (row 0 is drawn at the bottom).
    pub rows: usize,
    /// Row-major values.
    pub values: Vec<Option<f64>>,
    /// Canvas size.
    pub width: f64,
    /// Canvas height.
    pub height: f64,
}

impl Heatmap {
    /// Build from row-major values.
    pub fn new(
        title: impl Into<String>,
        value_label: impl Into<String>,
        cols: usize,
        rows: usize,
        values: Vec<Option<f64>>,
    ) -> Self {
        assert_eq!(values.len(), cols * rows, "values must be cols×rows");
        assert!(cols > 0 && rows > 0);
        Heatmap {
            title: title.into(),
            value_label: value_label.into(),
            cols,
            rows,
            values,
            width: 640.0,
            height: 520.0,
        }
    }

    /// Defined-value range.
    pub fn range(&self) -> Option<(f64, f64)> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut any = false;
        for v in self.values.iter().flatten() {
            any = true;
            min = min.min(*v);
            max = max.max(*v);
        }
        any.then_some((min, max))
    }

    /// Render to SVG.
    pub fn render(&self) -> String {
        self.render_canvas().finish()
    }

    /// Render to a canvas.
    pub fn render_canvas(&self) -> Canvas {
        let mut c = Canvas::new(self.width, self.height);
        c.background("#ffffff");
        c.text(
            self.width / 2.0,
            20.0,
            14.0,
            "#222222",
            Anchor::Middle,
            &self.title,
        );
        let (min, max) = self.range().unwrap_or((0.0, 1.0));
        let span = (max - min).max(1e-12);
        let legend_h = 46.0;
        let plot_w = self.width - 24.0;
        let plot_h = self.height - 34.0 - legend_h;
        let cell_w = plot_w / self.cols as f64;
        let cell_h = plot_h / self.rows as f64;
        for row in 0..self.rows {
            for col in 0..self.cols {
                let Some(v) = self.values[row * self.cols + col] else {
                    continue;
                };
                let t = (v - min) / span;
                let x = 12.0 + col as f64 * cell_w;
                // Row 0 at the bottom (geographic convention).
                let y = 34.0 + (self.rows - 1 - row) as f64 * cell_h;
                c.rect(x, y, cell_w + 0.4, cell_h + 0.4, &color::ramp(t), None);
            }
        }
        // Legend: a ramp bar with min/max labels.
        let ly = self.height - legend_h + 14.0;
        let lw = self.width * 0.5;
        let lx = (self.width - lw) / 2.0;
        let steps = 32;
        for i in 0..steps {
            let t = i as f64 / (steps - 1) as f64;
            c.rect(
                lx + t * lw,
                ly,
                lw / steps as f64 + 0.5,
                10.0,
                &color::ramp(t),
                None,
            );
        }
        c.text(
            lx - 6.0,
            ly + 9.0,
            10.0,
            "#333333",
            Anchor::End,
            &format!("{min:.1}"),
        );
        c.text(
            lx + lw + 6.0,
            ly + 9.0,
            10.0,
            "#333333",
            Anchor::Start,
            &format!("{max:.1}"),
        );
        c.text(
            self.width / 2.0,
            ly + 26.0,
            10.0,
            "#333333",
            Anchor::Middle,
            &self.value_label,
        );
        c
    }
}

/// Build an hour-of-day (columns 0..24) × day (rows) heatmap from daily
/// hourly profiles — the pattern-analysis view of §2.4.
pub fn hour_by_day(
    title: impl Into<String>,
    value_label: impl Into<String>,
    days: &[[Option<f64>; 24]],
) -> Heatmap {
    let rows = days.len().max(1);
    let mut values = Vec::with_capacity(rows * 24);
    if days.is_empty() {
        values.resize(24, None);
    } else {
        for day in days {
            values.extend_from_slice(day);
        }
    }
    Heatmap::new(title, value_label, 24, rows, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_cells_and_legend() {
        let values: Vec<Option<f64>> = (0..12).map(|i| Some(f64::from(i))).collect();
        let hm = Heatmap::new("test", "µg/m³", 4, 3, values);
        assert_eq!(hm.range(), Some((0.0, 11.0)));
        let svg = hm.render();
        // 12 cells + 32 legend steps + background.
        assert!(svg.matches("<rect").count() > 12 + 32);
        assert!(svg.contains("test"));
        assert!(svg.contains("µg/m³"));
        assert!(svg.contains("0.0") && svg.contains("11.0"));
    }

    #[test]
    fn none_cells_left_blank() {
        let mut values: Vec<Option<f64>> = vec![Some(1.0); 9];
        values[4] = None;
        let with_hole = Heatmap::new("h", "x", 3, 3, values).render();
        let full = Heatmap::new("h", "x", 3, 3, vec![Some(1.0); 9]).render();
        assert!(with_hole.matches("<rect").count() < full.matches("<rect").count());
    }

    #[test]
    fn all_none_uses_default_range() {
        let hm = Heatmap::new("h", "x", 2, 2, vec![None; 4]);
        assert_eq!(hm.range(), None);
        let svg = hm.render();
        assert!(svg.contains("<svg"));
    }

    #[test]
    fn hour_by_day_shape() {
        let day: [Option<f64>; 24] = std::array::from_fn(|h| Some(h as f64));
        let hm = hour_by_day("week", "ppm", &[day; 7]);
        assert_eq!(hm.cols, 24);
        assert_eq!(hm.rows, 7);
        assert_eq!(hm.values.len(), 168);
        let empty = hour_by_day("none", "ppm", &[]);
        assert_eq!(empty.rows, 1);
    }

    #[test]
    #[should_panic(expected = "cols×rows")]
    fn wrong_value_count_panics() {
        Heatmap::new("h", "x", 3, 3, vec![Some(1.0); 8]);
    }
}
