//! # ctt-viz — SVG visualizations (Figs. 3–8)
//!
//! "Visualizations and analyses are connected to all stages of the data
//! processing" (§2.1). This crate renders every figure class the paper
//! shows, as standalone SVG:
//!
//! * [`svg`] — the SVG document builder (the only place SVG syntax lives).
//! * [`scale`] — linear/time scales with nice ticks.
//! * [`color`] — categorical palette, sequential ramps, shading.
//! * [`chart`] — time-series line charts and category scatter plots
//!   (Figs. 4–5).
//! * [`map`] — geographic markers and network links (Figs. 3, 6).
//! * [`dashboard`] — grid dashboards, stat tiles, alarm lists (Figs. 6, 8).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod chart;
pub mod color;
pub mod dashboard;
pub mod heatmap;
pub mod map;
pub mod scale;
pub mod svg;

pub use chart::{LineChart, ScatterChart};
pub use dashboard::{AlarmList, Dashboard, StatTile};
pub use heatmap::{hour_by_day, Heatmap};
pub use map::{Link, MapView, Marker, MarkerKind};
pub use scale::{LinearScale, TimeScale};
pub use svg::{Anchor, Canvas};
