//! Geographic map and network views (Figs. 3 and 6).
//!
//! A [`MapView`] plots markers (sensors with AQI colours, gateways) and
//! links (sensor→gateway radio links with live state) over a city extent —
//! "a visualization of the network itself ... of the structure of digital
//! twins for sensors and gateways, their location, the connections and
//! live data transmission" (§2.3).

use crate::svg::{Anchor, Canvas};
use ctt_core::geo::{BoundingBox, LatLon};

/// Marker glyph kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerKind {
    /// A sensor node: circle.
    Sensor,
    /// A gateway: square.
    Gateway,
    /// A reference station: diamond.
    Station,
}

/// One marker on the map.
#[derive(Debug, Clone)]
pub struct Marker {
    /// Position.
    pub position: LatLon,
    /// Glyph.
    pub kind: MarkerKind,
    /// Fill colour (state or AQI band colour).
    pub color: String,
    /// Label under the marker.
    pub label: String,
    /// Optional value shown next to the marker (e.g. jam factor, CAQI).
    pub value: Option<String>,
}

/// A link between two positions (sensor→gateway).
#[derive(Debug, Clone)]
pub struct Link {
    /// One endpoint.
    pub from: LatLon,
    /// Other endpoint.
    pub to: LatLon,
    /// Stroke colour.
    pub color: String,
    /// Stroke width (e.g. scaled by traffic volume).
    pub width: f64,
    /// Dashed (e.g. stale/weak link).
    pub dashed: bool,
}

/// The map view.
#[derive(Debug, Clone)]
pub struct MapView {
    /// Title.
    pub title: String,
    /// Markers.
    pub markers: Vec<Marker>,
    /// Links (drawn under markers).
    pub links: Vec<Link>,
    /// Canvas size.
    pub width: f64,
    /// Canvas height.
    pub height: f64,
}

impl MapView {
    /// New empty map.
    pub fn new(title: impl Into<String>) -> Self {
        MapView {
            title: title.into(),
            markers: Vec::new(),
            links: Vec::new(),
            width: 640.0,
            height: 480.0,
        }
    }

    fn extent(&self) -> BoundingBox {
        let pts = self
            .markers
            .iter()
            .map(|m| m.position)
            .chain(self.links.iter().flat_map(|l| [l.from, l.to]));
        BoundingBox::of(pts)
            .unwrap_or(BoundingBox {
                min_lat: 0.0,
                min_lon: 0.0,
                max_lat: 1.0,
                max_lon: 1.0,
            })
            .expanded(0.004)
    }

    /// Project a position into canvas pixels for the current extent.
    fn to_px(&self, bb: &BoundingBox, p: LatLon) -> (f64, f64) {
        let pad = 30.0;
        // Equirectangular with latitude correction for aspect.
        let lat_mid = (bb.min_lat + bb.max_lat) / 2.0;
        let kx = lat_mid.to_radians().cos();
        let w_deg = (bb.max_lon - bb.min_lon) * kx;
        let h_deg = bb.max_lat - bb.min_lat;
        let sx = (self.width - 2.0 * pad) / w_deg.max(1e-9);
        let sy = (self.height - 2.0 * pad) / h_deg.max(1e-9);
        let s = sx.min(sy);
        let x = pad + (p.lon_deg - bb.min_lon) * kx * s;
        let y = self.height - pad - (p.lat_deg - bb.min_lat) * s;
        (x, y)
    }

    /// Render to an SVG string.
    pub fn render(&self) -> String {
        self.render_canvas().finish()
    }

    /// Render to a canvas for embedding.
    pub fn render_canvas(&self) -> Canvas {
        let mut c = Canvas::new(self.width, self.height);
        c.background("#f4f2ee");
        c.text(
            self.width / 2.0,
            20.0,
            14.0,
            "#222222",
            Anchor::Middle,
            &self.title,
        );
        let bb = self.extent();
        for l in &self.links {
            let (x1, y1) = self.to_px(&bb, l.from);
            let (x2, y2) = self.to_px(&bb, l.to);
            if l.dashed {
                c.dashed_line(x1, y1, x2, y2, &l.color, l.width);
            } else {
                c.line(x1, y1, x2, y2, &l.color, l.width);
            }
        }
        for m in &self.markers {
            let (x, y) = self.to_px(&bb, m.position);
            match m.kind {
                MarkerKind::Sensor => c.circle(x, y, 6.0, &m.color, Some(("#333333", 1.0))),
                MarkerKind::Gateway => c.rect(
                    x - 6.0,
                    y - 6.0,
                    12.0,
                    12.0,
                    &m.color,
                    Some(("#333333", 1.0)),
                ),
                MarkerKind::Station => {
                    c.polygon(
                        &[(x, y - 8.0), (x + 8.0, y), (x, y + 8.0), (x - 8.0, y)],
                        &m.color,
                        Some(("#333333", 1.0)),
                    );
                }
            }
            c.text(x, y + 18.0, 9.0, "#333333", Anchor::Middle, &m.label);
            if let Some(v) = &m.value {
                c.text(x, y - 10.0, 10.0, "#111111", Anchor::Middle, v);
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map() -> MapView {
        let center = LatLon::new(63.4305, 10.3951);
        let mut m = MapView::new("Trondheim network");
        m.markers.push(Marker {
            position: center,
            kind: MarkerKind::Gateway,
            color: "#2ca02c".to_string(),
            label: "gw-1".to_string(),
            value: None,
        });
        for i in 0..3 {
            let p = center.offset(f64::from(i) * 110.0, 900.0);
            m.markers.push(Marker {
                position: p,
                kind: MarkerKind::Sensor,
                color: "#79bc6a".to_string(),
                label: format!("node-{i}"),
                value: Some(format!("{}", 400 + i)),
            });
            m.links.push(Link {
                from: p,
                to: center,
                color: "#888888".to_string(),
                width: 1.0,
                dashed: i == 2,
            });
        }
        m.markers.push(Marker {
            position: center.offset(200.0, 1200.0),
            kind: MarkerKind::Station,
            color: "#ffdd55".to_string(),
            label: "NILU".to_string(),
            value: None,
        });
        m
    }

    #[test]
    fn renders_all_glyphs() {
        let svg = sample_map().render();
        assert!(svg.contains("Trondheim network"));
        // 3 sensors as circles, 1 gateway square + background rect, 1 diamond.
        assert!(svg.matches("<circle").count() >= 3);
        assert!(svg.matches("<rect").count() >= 2);
        assert!(svg.matches("<polygon").count() >= 1);
        assert!(svg.matches("<line").count() >= 3);
        assert!(svg.contains("stroke-dasharray"), "dashed link missing");
        assert!(svg.contains("node-0") && svg.contains("NILU"));
        assert!(svg.contains("400"));
    }

    #[test]
    fn markers_stay_on_canvas() {
        let m = sample_map();
        let bb = m.extent();
        for marker in &m.markers {
            let (x, y) = m.to_px(&bb, marker.position);
            assert!(x >= 0.0 && x <= m.width, "x {x}");
            assert!(y >= 0.0 && y <= m.height, "y {y}");
        }
    }

    #[test]
    fn north_is_up_east_is_right() {
        let m = sample_map();
        let bb = m.extent();
        let center = LatLon::new(63.4305, 10.3951);
        let (x0, y0) = m.to_px(&bb, center);
        let (xn, yn) = m.to_px(&bb, center.offset(0.0, 500.0));
        let (xe, ye) = m.to_px(&bb, center.offset(90.0, 500.0));
        assert!(yn < y0, "north must be up");
        assert!(xe > x0, "east must be right");
        assert!((xn - x0).abs() < 2.0);
        assert!((ye - y0).abs() < 2.0);
    }

    #[test]
    fn empty_map_renders() {
        let svg = MapView::new("empty").render();
        assert!(svg.contains("<svg"));
    }
}
