//! Axis scales and tick generation.

use ctt_core::time::{Span, Timestamp, DAY, HOUR};

/// Linear scale mapping a data domain onto a pixel range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearScale {
    /// Domain minimum.
    pub d0: f64,
    /// Domain maximum.
    pub d1: f64,
    /// Range start (pixels).
    pub r0: f64,
    /// Range end (pixels).
    pub r1: f64,
}

impl LinearScale {
    /// Build a scale; degenerate domains are widened symmetrically.
    pub fn new(d0: f64, d1: f64, r0: f64, r1: f64) -> Self {
        let (d0, d1) = if (d1 - d0).abs() < 1e-12 {
            (d0 - 1.0, d1 + 1.0)
        } else {
            (d0, d1)
        };
        LinearScale { d0, d1, r0, r1 }
    }

    /// Scale fitted to data with a fractional padding of the domain.
    pub fn fit(values: impl IntoIterator<Item = f64>, pad: f64, r0: f64, r1: f64) -> Self {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            if v.is_finite() {
                min = min.min(v);
                max = max.max(v);
            }
        }
        if !min.is_finite() {
            min = 0.0;
            max = 1.0;
        }
        let span = (max - min).max(1e-12);
        LinearScale::new(min - span * pad, max + span * pad, r0, r1)
    }

    /// Map a domain value to pixels.
    pub fn map(&self, v: f64) -> f64 {
        self.r0 + (v - self.d0) / (self.d1 - self.d0) * (self.r1 - self.r0)
    }

    /// Inverse map.
    pub fn invert(&self, px: f64) -> f64 {
        self.d0 + (px - self.r0) / (self.r1 - self.r0) * (self.d1 - self.d0)
    }

    /// "Nice" tick positions (1/2/5 × 10ⁿ steps), ≤ `max_ticks` of them.
    pub fn ticks(&self, max_ticks: usize) -> Vec<f64> {
        let max_ticks = max_ticks.max(2);
        let span = self.d1 - self.d0;
        let raw_step = span / max_ticks as f64;
        let mag = 10f64.powf(raw_step.abs().log10().floor());
        let norm = raw_step / mag;
        let step = if norm < 1.5 {
            1.0
        } else if norm < 3.5 {
            2.0
        } else if norm < 7.5 {
            5.0
        } else {
            10.0
        } * mag;
        let first = (self.d0 / step).ceil() * step;
        let mut ticks = Vec::new();
        let mut t = first;
        while t <= self.d1 + step * 1e-9 {
            // Snap tiny float error to zero.
            ticks.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
            t += step;
        }
        ticks
    }
}

/// Time scale: timestamps onto pixels, with calendar-aware ticks.
#[derive(Debug, Clone, Copy)]
pub struct TimeScale {
    inner: LinearScale,
}

impl TimeScale {
    /// Scale spanning `[t0, t1]`.
    pub fn new(t0: Timestamp, t1: Timestamp, r0: f64, r1: f64) -> Self {
        TimeScale {
            inner: LinearScale::new(t0.as_seconds() as f64, t1.as_seconds() as f64, r0, r1),
        }
    }

    /// Map a timestamp to pixels.
    pub fn map(&self, t: Timestamp) -> f64 {
        self.inner.map(t.as_seconds() as f64)
    }

    /// Tick instants plus label strings, spaced at a calendar-friendly step.
    pub fn ticks(&self, max_ticks: usize) -> Vec<(Timestamp, String)> {
        let span_s = (self.inner.d1 - self.inner.d0).max(1.0) as i64;
        let candidates = [
            60,
            5 * 60,
            15 * 60,
            HOUR,
            3 * HOUR,
            6 * HOUR,
            12 * HOUR,
            DAY,
            2 * DAY,
            7 * DAY,
            14 * DAY,
            30 * DAY,
        ];
        let step = candidates
            .iter()
            .copied()
            .find(|&s| span_s / s <= max_ticks as i64)
            .unwrap_or(365 * DAY);
        let start = Timestamp(self.inner.d0 as i64).align_up(Span::seconds(step));
        let mut out = Vec::new();
        let mut t = start;
        while (t.as_seconds() as f64) <= self.inner.d1 {
            let c = t.civil();
            let label = if step >= DAY {
                format!("{:02}-{:02}", c.month, c.day)
            } else {
                format!("{:02}:{:02}", c.hour, c.minute)
            };
            out.push((t, label));
            t += Span::seconds(step);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_map_and_invert() {
        let s = LinearScale::new(0.0, 10.0, 100.0, 200.0);
        assert_eq!(s.map(0.0), 100.0);
        assert_eq!(s.map(10.0), 200.0);
        assert_eq!(s.map(5.0), 150.0);
        assert!((s.invert(150.0) - 5.0).abs() < 1e-12);
        // Inverted pixel ranges (SVG y axis) work too.
        let y = LinearScale::new(0.0, 10.0, 200.0, 100.0);
        assert_eq!(y.map(0.0), 200.0);
        assert_eq!(y.map(10.0), 100.0);
    }

    #[test]
    fn degenerate_domain_widened() {
        let s = LinearScale::new(5.0, 5.0, 0.0, 100.0);
        assert!(s.d1 > s.d0);
        assert_eq!(s.map(5.0), 50.0);
    }

    #[test]
    fn fit_pads_and_handles_empty() {
        let s = LinearScale::fit([1.0, 3.0], 0.5, 0.0, 100.0);
        assert!(s.d0 < 1.0 && s.d1 > 3.0);
        let empty = LinearScale::fit(std::iter::empty(), 0.1, 0.0, 100.0);
        assert!(empty.d0 < empty.d1);
        // NaN values ignored.
        let s = LinearScale::fit([f64::NAN, 2.0, 4.0], 0.0, 0.0, 1.0);
        assert_eq!((s.d0, s.d1), (2.0, 4.0));
    }

    #[test]
    fn nice_ticks() {
        let s = LinearScale::new(0.0, 100.0, 0.0, 1.0);
        let ticks = s.ticks(5);
        assert_eq!(ticks, vec![0.0, 20.0, 40.0, 60.0, 80.0, 100.0]);
        let s = LinearScale::new(-1.3, 1.2, 0.0, 1.0);
        let ticks = s.ticks(6);
        assert!(ticks.contains(&0.0));
        assert!(ticks.len() >= 3 && ticks.len() <= 8);
        for w in ticks.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn time_ticks_hourly_for_a_day() {
        let t0 = Timestamp::from_civil(2017, 5, 1, 0, 0, 0);
        let t1 = t0 + Span::days(1);
        let ts = TimeScale::new(t0, t1, 0.0, 800.0);
        let ticks = ts.ticks(10);
        assert!(
            ticks.len() >= 4 && ticks.len() <= 10,
            "{} ticks",
            ticks.len()
        );
        // Labels are HH:MM for sub-day steps.
        assert!(ticks[0].1.contains(':'));
        assert_eq!(ts.map(t0), 0.0);
        assert_eq!(ts.map(t1), 800.0);
    }

    #[test]
    fn time_ticks_daily_for_a_month() {
        let t0 = Timestamp::from_civil(2017, 5, 1, 0, 0, 0);
        let t1 = t0 + Span::days(30);
        let ticks = TimeScale::new(t0, t1, 0.0, 800.0).ticks(12);
        assert!(!ticks.is_empty());
        // Labels are MM-DD for day-or-larger steps.
        assert!(ticks[0].1.contains('-'));
    }
}
