//! Minimal SVG document builder.
//!
//! All CTT visualizations render to standalone SVG files; this module is
//! the only place that writes SVG syntax.

use std::fmt::Write as _;

/// Escape text content / attribute values.
pub fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Text anchor for labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Anchor {
    /// Left-aligned.
    #[default]
    Start,
    /// Centred.
    Middle,
    /// Right-aligned.
    End,
}

impl Anchor {
    fn attr(self) -> &'static str {
        match self {
            Anchor::Start => "start",
            Anchor::Middle => "middle",
            Anchor::End => "end",
        }
    }
}

/// An SVG canvas accumulating elements.
#[derive(Debug, Clone)]
pub struct Canvas {
    width: f64,
    height: f64,
    body: String,
}

impl Canvas {
    /// A canvas of the given pixel size.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width > 0.0 && height > 0.0);
        Canvas {
            width,
            height,
            body: String::new(),
        }
    }

    /// Canvas width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Canvas height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Filled background rectangle.
    pub fn background(&mut self, fill: &str) {
        let (w, h) = (self.width, self.height);
        self.rect(0.0, 0.0, w, h, fill, None);
    }

    /// Rectangle with optional stroke `(color, width)`.
    pub fn rect(
        &mut self,
        x: f64,
        y: f64,
        w: f64,
        h: f64,
        fill: &str,
        stroke: Option<(&str, f64)>,
    ) {
        let _ = write!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{}""#,
            escape(fill)
        );
        if let Some((color, sw)) = stroke {
            let _ = write!(
                self.body,
                r#" stroke="{}" stroke-width="{sw}""#,
                escape(color)
            );
        }
        self.body.push_str("/>\n");
    }

    /// Circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str, stroke: Option<(&str, f64)>) {
        let _ = write!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{}""#,
            escape(fill)
        );
        if let Some((color, sw)) = stroke {
            let _ = write!(
                self.body,
                r#" stroke="{}" stroke-width="{sw}""#,
                escape(color)
            );
        }
        self.body.push_str("/>\n");
    }

    /// Straight line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{}" stroke-width="{width}"/>"#,
            escape(stroke)
        );
    }

    /// Dashed line.
    pub fn dashed_line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{}" stroke-width="{width}" stroke-dasharray="4 3"/>"#,
            escape(stroke)
        );
    }

    /// Polyline (unfilled path through points).
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        if points.len() < 2 {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="{width}"/>"#,
            pts.join(" "),
            escape(stroke)
        );
    }

    /// Filled polygon.
    pub fn polygon(&mut self, points: &[(f64, f64)], fill: &str, stroke: Option<(&str, f64)>) {
        if points.len() < 3 {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        let _ = write!(
            self.body,
            r#"<polygon points="{}" fill="{}""#,
            pts.join(" "),
            escape(fill)
        );
        if let Some((color, sw)) = stroke {
            let _ = write!(
                self.body,
                r#" stroke="{}" stroke-width="{sw}""#,
                escape(color)
            );
        }
        self.body.push_str("/>\n");
    }

    /// Text label. `size` in px.
    pub fn text(&mut self, x: f64, y: f64, size: f64, fill: &str, anchor: Anchor, content: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size}" font-family="sans-serif" fill="{}" text-anchor="{}">{}</text>"#,
            escape(fill),
            anchor.attr(),
            escape(content)
        );
    }

    /// Embed another canvas's body translated to `(x, y)` (dashboard
    /// composition).
    pub fn embed(&mut self, x: f64, y: f64, inner: &Canvas) {
        let _ = writeln!(self.body, r#"<g transform="translate({x:.2},{y:.2})">"#);
        self.body.push_str(&inner.body);
        self.body.push_str("</g>\n");
    }

    /// Finish, producing the complete SVG document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut c = Canvas::new(200.0, 100.0);
        c.background("#ffffff");
        c.circle(10.0, 10.0, 5.0, "red", None);
        let svg = c.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("viewBox=\"0 0 200 100\""));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<rect"));
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
        let mut c = Canvas::new(10.0, 10.0);
        c.text(0.0, 0.0, 10.0, "#000", Anchor::Start, "x < y & z");
        let svg = c.finish();
        assert!(svg.contains("x &lt; y &amp; z"));
    }

    #[test]
    fn polyline_needs_two_points() {
        let mut c = Canvas::new(10.0, 10.0);
        c.polyline(&[(0.0, 0.0)], "#000", 1.0);
        assert!(!c.clone().finish().contains("polyline"));
        c.polyline(&[(0.0, 0.0), (5.0, 5.0)], "#000", 1.0);
        assert!(c.finish().contains("polyline"));
    }

    #[test]
    fn polygon_needs_three_points() {
        let mut c = Canvas::new(10.0, 10.0);
        c.polygon(&[(0.0, 0.0), (5.0, 5.0)], "#000", None);
        assert!(!c.clone().finish().contains("polygon"));
        c.polygon(
            &[(0.0, 0.0), (5.0, 5.0), (0.0, 5.0)],
            "#000",
            Some(("#111", 0.5)),
        );
        let svg = c.finish();
        assert!(svg.contains("polygon"));
        assert!(svg.contains("stroke=\"#111\""));
    }

    #[test]
    fn embed_translates() {
        let mut inner = Canvas::new(50.0, 50.0);
        inner.circle(1.0, 1.0, 1.0, "blue", None);
        let mut outer = Canvas::new(100.0, 100.0);
        outer.embed(25.0, 30.0, &inner);
        let svg = outer.finish();
        assert!(svg.contains("translate(25.00,30.00)"));
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn anchors_and_stroke_attrs() {
        let mut c = Canvas::new(10.0, 10.0);
        c.text(5.0, 5.0, 8.0, "#333", Anchor::Middle, "hi");
        c.rect(0.0, 0.0, 2.0, 2.0, "none", Some(("#f00", 1.5)));
        c.dashed_line(0.0, 0.0, 3.0, 3.0, "#999", 1.0);
        let svg = c.finish();
        assert!(svg.contains("text-anchor=\"middle\""));
        assert!(svg.contains("stroke-width=\"1.5\""));
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    #[should_panic]
    fn zero_size_canvas_rejected() {
        Canvas::new(0.0, 100.0);
    }
}
