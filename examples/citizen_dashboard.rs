//! The citizens' demo (§3): live air quality + traffic dashboard and the
//! anomalous-day browser over historic data.
//!
//! Writes `results/example_citizen_dashboard.svg` (a Fig. 6-style
//! dashboard) and prints the anomaly browser output.
//!
//! ```sh
//! cargo run --release --example citizen_dashboard
//! ```

use ctt::analytics::{anomalous_days, diurnal_profile};
use ctt::integration::TrafficFeed;
use ctt::prelude::*;
use ctt::viz::{Dashboard, LineChart, MapView, Marker, MarkerKind, StatTile};
use ctt_core::aqi::{caqi, AqiBand};

fn main() {
    let mut pipeline = Pipeline::new(Deployment::trondheim(), 42);
    let start = pipeline.deployment.started;
    let end = start + Span::days(7);
    pipeline.run_until(end);

    // Live view: last hour's mean per sensor → CAQI colour on the map.
    let mut map = MapView::new("Air quality right now — Trondheim");
    let mut worst = AqiBand::VeryLow;
    for node in pipeline.deployment.nodes.clone() {
        let window = (end - Span::hours(1), end);
        let no2 = pipeline.device_series(
            node.eui,
            Quantity::Pollutant(Pollutant::No2),
            window.0,
            window.1,
        );
        let pm10 = pipeline.device_series(
            node.eui,
            Quantity::Pollutant(Pollutant::Pm10),
            window.0,
            window.1,
        );
        let mean = |s: &Series| s.values().sum::<f64>() / s.len().max(1) as f64;
        let band = caqi(&[
            (Pollutant::No2, mean(&no2) * 1.9125),
            (Pollutant::Pm10, mean(&pm10)),
        ])
        .map(|c| c.band())
        .unwrap_or(AqiBand::VeryLow);
        worst = worst.max(band);
        map.markers.push(Marker {
            position: node.site.position,
            kind: MarkerKind::Sensor,
            color: band.color().to_string(),
            label: node.name.clone(),
            value: Some(band.label().to_string()),
        });
    }

    // Traffic panel from the here.com-style feed.
    let feed = TrafficFeed::new(pipeline.deployment.traffic_model(42), 9);
    let jam = feed.series(end - Span::days(1), end);
    let mut traffic_chart = LineChart::new("Traffic jam factor (last 24 h)", "jam factor");
    traffic_chart.add("arterial", jam.clone());

    // CO2 trend panel.
    let co2_city = pipeline.city_series(
        Quantity::Pollutant(Pollutant::Co2),
        end - Span::days(1),
        end,
    );
    let mut co2_chart = LineChart::new("City CO₂ (last 24 h)", "ppm");
    co2_chart.add("city mean", co2_city.clone());

    // Assemble the Fig. 6-style dashboard.
    let mut dash = Dashboard::new("CTT — citizens' air quality & traffic", 3, 2, 360.0, 260.0);
    let tile = |label: &str, value: String, color: &str| {
        StatTile {
            label: label.to_string(),
            value,
            color: color.to_string(),
        }
        .render_canvas(360.0, 260.0)
    };
    dash.place(
        0,
        0,
        1,
        1,
        tile(
            "overall air quality",
            worst.label().to_string(),
            worst.color(),
        ),
    );
    let jam_now = jam.points.last().map(|&(_, v)| v).unwrap_or(0.0);
    dash.place(
        0,
        1,
        1,
        1,
        tile("jam factor now", format!("{jam_now:.1}"), "#0072B2"),
    );
    let mut co2_canvas = co2_chart;
    co2_canvas.width = 740.0;
    co2_canvas.height = 260.0;
    dash.place(1, 0, 2, 1, co2_canvas.render_canvas());
    let mut tr = traffic_chart;
    tr.width = 740.0;
    tr.height = 260.0;
    dash.place(1, 1, 2, 1, tr.render_canvas());
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/example_citizen_dashboard.svg", dash.render())
        .expect("write dashboard SVG");
    println!("wrote results/example_citizen_dashboard.svg");
    let _ = map.render(); // rendered as part of Fig. 6 regeneration too

    // Historic browser: anomalous emission days over the whole week.
    let dev = pipeline.deployment.nodes[0].eui;
    let co2_hist = pipeline.device_series(dev, Quantity::Pollutant(Pollutant::Co2), start, end);
    println!(
        "\nAnomalous CO₂ days at {} (z > 1.7):",
        pipeline.deployment.nodes[0].name
    );
    let days = anomalous_days(&co2_hist, 1.7);
    if days.is_empty() {
        println!("  none in this window — try a longer run");
    }
    for d in days {
        println!("  {}  daily mean {:.1} ppm  z = {:+.2}", d.day, d.mean, d.z);
    }

    // When is air best for a run? The diurnal profile answers.
    let no2_hist = pipeline.device_series(dev, Quantity::Pollutant(Pollutant::No2), start, end);
    let profile = diurnal_profile(&no2_hist);
    let best_hour = (0..24)
        .filter(|&h| profile[h].is_some())
        .min_by(|&a, &b| profile[a].unwrap().total_cmp(&profile[b].unwrap()))
        .unwrap_or(4);
    println!("\ncleanest hour of day for NO₂: {best_hour:02}:00 UTC");
}
