//! The developers' demo (§3): the full two-city pilot end to end.
//!
//! Runs both Trondheim (12 sensors) and Vejle (2 sensors) for a day,
//! traces one uplink through the Fig. 2 protocol stages, shows the
//! architecture counters at every hop, and performs the co-located
//! calibration against the reference station.
//!
//! ```sh
//! cargo run --release --example city_pilot
//! cargo run --release --example city_pilot -- --profile   # + metrics export
//! ```
//!
//! With `--profile`, each pilot's metrics snapshot and scheduling profile
//! are written to `results/profile_<city>.csv` / `.json` / `_sched.txt` —
//! the same replay-deterministic exports the figures binary produces.

use ctt::analytics::{calibrate_and_evaluate, completeness};
use ctt::dataport::{ProtocolTrace, Stage};
use ctt::integration::NiluStation;
use ctt::prelude::*;
use ctt_core::emission::Site;

fn main() {
    let profile = std::env::args().any(|a| a == "--profile");
    for deployment in Deployment::all_pilots() {
        let city = deployment.city.clone();
        println!("════════ {city} pilot ════════");
        let mut pipeline = Pipeline::new(deployment, 42);
        if profile {
            pipeline.enable_dispatch_trace(128);
        }
        let start = pipeline.deployment.started;
        let end = start + Span::days(1);
        pipeline.run_until(end);
        if profile {
            export_profile(&pipeline);
        }

        let st = pipeline.stats();
        let radio = pipeline.radio_stats();
        println!("  nodes:          {}", pipeline.deployment.nodes.len());
        println!("  readings:       {}", st.readings);
        println!(
            "  radio:          {} delivered / {} lost (PDR {:.1}%)",
            st.delivered,
            st.radio_lost,
            radio.pdr() * 100.0
        );
        println!(
            "    losses:       coverage={} collision={} duty={} busy={}",
            radio.lost_no_coverage,
            radio.lost_collision,
            radio.lost_duty_cycle,
            radio.lost_gateway_busy
        );
        println!("  ADR commands:   {}", st.adr_commands);
        println!(
            "  TSDB:           {} points, {} series, {} bytes",
            pipeline.tsdb.stats().points,
            pipeline.tsdb.stats().series,
            pipeline.tsdb.stats().bytes
        );

        // Per-node completeness (the §2.2 missing-data reality).
        for n in &pipeline.deployment.nodes.clone() {
            let s = pipeline.device_series(n.eui, Quantity::Pollutant(Pollutant::Co2), start, end);
            let c = completeness(&s, Span::minutes(5));
            println!("    {:<18} completeness {:>5.1}%", n.name, c * 100.0);
        }

        // Fig. 2: trace one uplink through all stages.
        let mut trace = ProtocolTrace::new();
        let t0 = start + Span::hours(1);
        trace.record(Stage::SensorUplink, t0, true, "SF10, 34 B PHY");
        trace.record(
            Stage::GatewayForward,
            t0 + Span::seconds(1),
            true,
            format!("{}", pipeline.gateway_ids()[0]),
        );
        trace.record(
            Stage::TtnBackend,
            t0 + Span::seconds(1),
            true,
            "dedup + ADR",
        );
        trace.record(Stage::MqttPublish, t0 + Span::seconds(2), true, "QoS1");
        trace.record(
            Stage::DataportIngest,
            t0 + Span::seconds(2),
            true,
            "twin updated",
        );
        trace.record(
            Stage::DatabaseWrite,
            t0 + Span::seconds(2),
            true,
            "9 points",
        );
        trace.record(
            Stage::Visualization,
            t0 + Span::seconds(3),
            true,
            "dashboard refresh",
        );
        println!("\n  Fig. 2 protocol trace:\n{}", indent(&trace.render(), 4));

        // Calibration against the official station (Trondheim only).
        if let Some(station_spec) = pipeline.deployment.reference_station.clone() {
            let station = NiluStation::new(
                station_spec.name.clone(),
                Site::kerbside(station_spec.position),
                7,
            );
            let reference = station.hourly_series(pipeline.emission(), Pollutant::Co2, start, end);
            let colocated = station_spec
                .colocated_node
                .expect("paper: node 1 co-located");
            // Hourly means of the co-located sensor to match the station.
            let raw =
                pipeline.device_series(colocated, Quantity::Pollutant(Pollutant::Co2), start, end);
            let hourly = ctt::integration::resample(
                &raw,
                start,
                end,
                Span::hours(1),
                ctt::integration::ResampleMethod::BucketMean,
            );
            match calibrate_and_evaluate(&hourly, &reference, 0.5) {
                Some(report) => {
                    println!("  calibration vs {}:", station.name);
                    println!(
                        "    absolute accuracy: RMSE {:.1} → {:.1} ppm, bias {:+.1} → {:+.1} ppm",
                        report.before.rmse,
                        report.after.rmse,
                        report.before.bias,
                        report.after.bias
                    );
                    println!(
                        "    relative accuracy: r = {:.3} (gain {:.3}, offset {:+.1})",
                        report.after.r,
                        report.calibration.fit.slope,
                        report.calibration.fit.intercept
                    );
                }
                None => println!("  calibration: not enough co-located pairs in one day"),
            }
        }
        println!();
    }
}

fn indent(s: &str, n: usize) -> String {
    let pad = " ".repeat(n);
    s.lines().map(|l| format!("{pad}{l}\n")).collect()
}

/// Write the pilot's observability exports under `results/`.
fn export_profile(pipeline: &Pipeline) {
    let slug = pipeline.deployment.city.to_lowercase();
    std::fs::create_dir_all("results").expect("create results/");
    let snap = pipeline.metrics_snapshot();
    let artifacts = [
        (format!("results/profile_{slug}.csv"), snap.to_csv()),
        (format!("results/profile_{slug}.json"), snap.to_json()),
        (
            format!("results/profile_{slug}_sched.txt"),
            pipeline.scheduling_profile(),
        ),
    ];
    for (path, content) in artifacts {
        std::fs::write(&path, content).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("  wrote {path}");
    }
}
