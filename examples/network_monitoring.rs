//! Network monitoring with the dataport (§2.3, Figs. 3 and 8).
//!
//! Runs the Trondheim pilot, injects a node hardware failure and then a
//! gateway outage, and shows how the digital twins distinguish the two —
//! including the hierarchical alarm suppression. Writes the Fig. 3-style
//! network SVG to `results/example_network.svg`.
//!
//! ```sh
//! cargo run --release --example network_monitoring
//! ```

use ctt::dataport::{GatewayState, TwinState, WatchdogVerdict};
use ctt::prelude::*;
use ctt::viz::{Link, MapView, Marker, MarkerKind};
use ctt_core::node::NodeHealth;

fn state_color(s: TwinState) -> &'static str {
    match s {
        TwinState::Online => "#2ca02c",
        TwinState::Late => "#f0a202",
        TwinState::Offline => "#d7191c",
        TwinState::NeverSeen => "#888888",
    }
}

fn print_alarms(pipeline: &Pipeline, when: &str) {
    let alarms = pipeline.dataport.active_alarms();
    println!("\n— alarms {when}: {} active", alarms.len());
    for a in &alarms {
        println!(
            "  [{}] {:?} {} — {}",
            a.severity, a.kind, a.source, a.message
        );
    }
}

fn main() {
    let mut pipeline = Pipeline::new(Deployment::trondheim(), 42);
    let start = pipeline.deployment.started;

    // Phase 1: healthy operation.
    pipeline.run_until(start + Span::hours(2));
    let snap = pipeline.dataport.snapshot(pipeline.now());
    println!(
        "phase 1: {} sensors online, {} gateways up, watchdog: {:?}",
        snap.sensors
            .iter()
            .filter(|s| s.state == TwinState::Online)
            .count(),
        snap.gateways
            .iter()
            .filter(|g| g.state == GatewayState::Up)
            .count(),
        WatchdogVerdict::Healthy,
    );
    print_alarms(&pipeline, "after 2 h healthy");

    // Phase 2: one node dies (hardware failure).
    pipeline.nodes_mut()[3].set_health(NodeHealth::Dead);
    println!("\n>>> injecting hardware failure into node 4");
    pipeline.run_until(start + Span::hours(3));
    print_alarms(&pipeline, "after node failure");

    // Phase 3: the node recovers.
    pipeline.nodes_mut()[3].set_health(NodeHealth::Healthy);
    println!("\n>>> node repaired");
    pipeline.run_until(start + Span::hours(4));
    print_alarms(&pipeline, "after repair");
    println!(
        "suppressed alarms so far: {}",
        pipeline.dataport.snapshot(pipeline.now()).suppressed_alarms
    );

    // Render the Fig. 3 network view: sensors, gateways, links.
    let snap = pipeline.dataport.snapshot(pipeline.now());
    let deployment = pipeline.deployment.clone();
    let mut map = MapView::new("CTT network — sensors, gateways, links");
    let gw_pos: std::collections::HashMap<_, _> = deployment
        .gateways
        .iter()
        .map(|g| (g.id, g.position))
        .collect();
    for s in &snap.sensors {
        let spec = deployment.node(s.device).expect("known node");
        if let (Some(gw), Some(&to)) = (s.last_gateway, s.last_gateway.and_then(|g| gw_pos.get(&g)))
        {
            let _ = gw;
            map.links.push(Link {
                from: spec.site.position,
                to,
                color: "#9aa7b0".to_string(),
                width: 1.0 + (s.uplinks as f64).log10(),
                dashed: s.state != TwinState::Online,
            });
        }
        map.markers.push(Marker {
            position: spec.site.position,
            kind: MarkerKind::Sensor,
            color: state_color(s.state).to_string(),
            label: spec.name.clone(),
            value: s.last_rssi_dbm.map(|r| format!("{r:.0} dBm")),
        });
    }
    for g in &snap.gateways {
        map.markers.push(Marker {
            position: gw_pos[&g.gateway],
            kind: MarkerKind::Gateway,
            color: if g.state == GatewayState::Up {
                "#2ca02c"
            } else {
                "#d7191c"
            }
            .to_string(),
            label: format!("gw {}", g.gateway.seq()),
            value: Some(format!("{} frames", g.frames)),
        });
    }
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/example_network.svg", map.render()).expect("write network SVG");
    println!("\nwrote results/example_network.svg");

    // Actor-system introspection: the supervision hierarchy of §2.3.
    println!("\nactor paths (first three sensors):");
    for n in deployment.nodes.iter().take(3) {
        println!(
            "  {}",
            pipeline.dataport.sensor_path(n.eui).expect("registered")
        );
    }
}
