//! Network monitoring under injected faults (§2.3, Figs. 3 and 8).
//!
//! Runs the Trondheim pilot with a chaos plan that kills one node and then
//! takes a gateway down while the node is still dead — the overlap case.
//! The digital twins must disambiguate: the dead node is a real failure,
//! the silent nodes behind the downed gateway are not. Prints the twins'
//! verdict, the hierarchical alarm suppression, and the loss ledger's
//! conservation accounting. Writes the Fig. 3-style network SVG to
//! `results/example_network.svg`.
//!
//! ```sh
//! cargo run --release --example network_monitoring
//! cargo run --release --example network_monitoring -- --profile  # + metrics export
//! ```
//!
//! With `--profile`, the chaos run's metrics snapshot and scheduling profile
//! are written to `results/profile_trondheim_chaos.csv` / `.json` /
//! `_sched.txt` — suffixed `_chaos` so they never clobber the healthy-run
//! `profile_trondheim.*` exports from the figures binary.

use ctt::chaos::{FaultKind, FaultPlan};
use ctt::dataport::{AlarmKind, GatewayState, TwinState};
use ctt::prelude::*;
use ctt::viz::{Link, MapView, Marker, MarkerKind};

fn state_color(s: TwinState) -> &'static str {
    match s {
        TwinState::Online => "#2ca02c",
        TwinState::Late => "#f0a202",
        TwinState::Offline => "#d7191c",
        TwinState::NeverSeen => "#888888",
    }
}

fn print_alarms(pipeline: &Pipeline, when: &str) {
    let alarms = pipeline.dataport.active_alarms();
    println!("\n— alarms {when}: {} active", alarms.len());
    for a in &alarms {
        println!(
            "  [{}] {:?} {} — {}",
            a.severity, a.kind, a.source, a.message
        );
    }
}

fn main() {
    let profile = std::env::args().any(|a| a == "--profile");
    let deployment = Deployment::trondheim();
    let start = deployment.started;
    let dead_node = deployment.nodes[3].eui;
    let downed_gw = deployment.gateways[0].id;

    // The fault schedule: node 4 dies at +2 h and stays dead; gateway 1
    // goes dark from +2 h 30 m to +3 h 30 m, overlapping the death.
    let plan = FaultPlan::new()
        .with(
            FaultKind::NodeDeath { device: dead_node },
            start + Span::hours(2),
            start + Span::hours(5),
        )
        .with(
            FaultKind::GatewayOutage { gateway: downed_gw },
            start + Span::hours(2) + Span::minutes(30),
            start + Span::hours(3) + Span::minutes(30),
        );
    let mut pipeline = Pipeline::with_chaos(deployment, 42, plan);
    if profile {
        pipeline.enable_dispatch_trace(128);
    }

    // Phase 1: healthy operation.
    pipeline.run_until(start + Span::hours(2));
    let snap = pipeline.dataport.snapshot(pipeline.now());
    println!(
        "phase 1: {} sensors online, {} gateways up",
        snap.sensors
            .iter()
            .filter(|s| s.state == TwinState::Online)
            .count(),
        snap.gateways
            .iter()
            .filter(|g| g.state == GatewayState::Up)
            .count(),
    );
    print_alarms(&pipeline, "after 2 h healthy");

    // Phase 2: the node death fires; the gateway is still up, so the
    // offline alarm is a genuine detection.
    println!("\n>>> chaos plan: node {dead_node} dies at +2 h");
    pipeline.run_until(start + Span::hours(2) + Span::minutes(25));
    print_alarms(&pipeline, "after node death");

    // Phase 3: mid-outage, the overlap case. The twins must not flag the
    // healthy-but-silent nodes behind the downed gateway.
    println!("\n>>> chaos plan: gateway {downed_gw} dark from +2 h 30 m");
    pipeline.run_until(start + Span::hours(3) + Span::minutes(25));
    print_alarms(&pipeline, "mid gateway outage");
    let snap = pipeline.dataport.snapshot(pipeline.now());
    let active = pipeline.dataport.active_alarms();
    let false_offline = active
        .iter()
        .filter(|a| {
            a.kind == AlarmKind::SensorOffline && !a.source.contains(&dead_node.to_string())
        })
        .count();
    println!("\ntwin disambiguation verdict (mid-outage):");
    println!(
        "  gateway outage alarm active: {}",
        active.iter().any(|a| a.kind == AlarmKind::GatewayOutage)
    );
    println!("  sensor-offline false alarms behind downed gateway: {false_offline}");
    println!(
        "  alarms suppressed by hierarchical correlation: {}",
        snap.suppressed_alarms
    );

    // Phase 4: the gateway recovers; only the genuinely dead node is dark.
    pipeline.run_until(start + Span::hours(4) + Span::minutes(30));
    print_alarms(&pipeline, "after gateway recovery");
    let snap = pipeline.dataport.snapshot(pipeline.now());
    for s in &snap.sensors {
        if s.state != TwinState::Online {
            let verdict = if s.device == dead_node {
                "real hardware failure"
            } else {
                "misattributed!"
            };
            println!("  {} is {:?} — {verdict}", s.device, s.state);
        }
    }

    // Conservation: every produced uplink is stored or attributed.
    let verdict = pipeline.ledger().verify();
    println!(
        "\nloss ledger: produced={} stored={} attributed={} unattributed={}",
        verdict.produced,
        verdict.stored,
        verdict.attributed,
        verdict.unattributed.len()
    );
    for (cause, n) in pipeline.ledger().cause_counts() {
        println!("  {} = {n}", cause.label());
    }

    // Render the Fig. 3 network view: sensors, gateways, links.
    let snap = pipeline.dataport.snapshot(pipeline.now());
    let deployment = pipeline.deployment.clone();
    let mut map = MapView::new("CTT network — sensors, gateways, links");
    let gw_pos: std::collections::HashMap<_, _> = deployment
        .gateways
        .iter()
        .map(|g| (g.id, g.position))
        .collect();
    for s in &snap.sensors {
        let spec = deployment.node(s.device).expect("known node");
        if let Some(&to) = s.last_gateway.and_then(|g| gw_pos.get(&g)) {
            map.links.push(Link {
                from: spec.site.position,
                to,
                color: "#9aa7b0".to_string(),
                width: 1.0 + (s.uplinks as f64).log10(),
                dashed: s.state != TwinState::Online,
            });
        }
        map.markers.push(Marker {
            position: spec.site.position,
            kind: MarkerKind::Sensor,
            color: state_color(s.state).to_string(),
            label: spec.name.clone(),
            value: s.last_rssi_dbm.map(|r| format!("{r:.0} dBm")),
        });
    }
    for g in &snap.gateways {
        map.markers.push(Marker {
            position: gw_pos[&g.gateway],
            kind: MarkerKind::Gateway,
            color: if g.state == GatewayState::Up {
                "#2ca02c"
            } else {
                "#d7191c"
            }
            .to_string(),
            label: format!("gw {}", g.gateway.seq()),
            value: Some(format!("{} frames", g.frames)),
        });
    }
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/example_network.svg", map.render()).expect("write network SVG");
    println!("\nwrote results/example_network.svg");

    // Actor-system introspection: the supervision hierarchy of §2.3.
    println!("\nactor paths (first three sensors):");
    for n in deployment.nodes.iter().take(3) {
        println!(
            "  {}",
            pipeline.dataport.sensor_path(n.eui).expect("registered")
        );
    }

    if profile {
        export_profile(&pipeline);
    }
}

/// Write the chaos run's observability exports under `results/`, with a
/// `_chaos` suffix so the figures binary's healthy-run profiles stay intact.
fn export_profile(pipeline: &Pipeline) {
    let slug = format!("{}_chaos", pipeline.deployment.city.to_lowercase());
    let snap = pipeline.metrics_snapshot();
    let artifacts = [
        (format!("results/profile_{slug}.csv"), snap.to_csv()),
        (format!("results/profile_{slug}.json"), snap.to_json()),
        (
            format!("results/profile_{slug}_sched.txt"),
            pipeline.scheduling_profile(),
        ),
    ];
    for (path, content) in artifacts {
        std::fs::write(&path, content).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("  wrote {path}");
    }
}
