//! Quickstart: run the Vejle pilot for six hours and look at the data.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ctt::analytics;
use ctt::prelude::*;

fn main() {
    // 1. Assemble the pipeline for the Vejle pilot (two sensors, one
    //    gateway — §3 of the paper).
    let mut pipeline = Pipeline::new(Deployment::vejle(), 42);
    let start = pipeline.deployment.started; // January 2017
    println!(
        "CTT quickstart — {} pilot, {} sensors, {} gateway(s), started {start}",
        pipeline.deployment.city,
        pipeline.deployment.nodes.len(),
        pipeline.deployment.gateways.len(),
    );

    // 2. Simulate six hours of operation: sampling, LoRaWAN transmission,
    //    MQTT forwarding, storage, monitoring.
    let end = start + Span::hours(6);
    pipeline.run_until(end);
    let stats = pipeline.stats();
    println!(
        "\nreadings: {}   delivered: {}   lost: {}   points stored: {}",
        stats.readings, stats.delivered, stats.radio_lost, stats.points_stored
    );
    println!("radio PDR: {:.1}%", pipeline.radio_stats().pdr() * 100.0);

    // 3. Query the time-series store.
    let device = pipeline.deployment.nodes[0].eui;
    let co2 = pipeline.device_series(device, Quantity::Pollutant(Pollutant::Co2), start, end);
    let summary = analytics::summary(&co2.values().collect::<Vec<_>>()).expect("data present");
    println!(
        "\nCO₂ at {device}: n={} mean={:.1} ppm  sd={:.1}  range {:.1}..{:.1}",
        summary.n, summary.mean, summary.sd, summary.min, summary.max
    );

    // 4. Check the network monitoring view.
    let snapshot = pipeline.dataport.snapshot(end);
    for s in &snapshot.sensors {
        println!(
            "sensor {}  state={:?}  battery={:.0}%  uplinks={}",
            s.device,
            s.state,
            s.battery_pct.unwrap_or(0.0),
            s.uplinks
        );
    }
    for g in &snapshot.gateways {
        println!(
            "gateway {}  state={:?}  frames={}",
            g.gateway, g.state, g.frames
        );
    }
    println!(
        "active alarms: {}   (suppressed by correlation: {})",
        snapshot.active_alarms.len(),
        snapshot.suppressed_alarms
    );
}
