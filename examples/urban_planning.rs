//! The city officials' demo (§3): urban planning with synthetic pollution.
//!
//! "We can inject synthetic data showing different pollution levels. We
//! interact with attendees by discussing urban planning issues such as
//! construction sites of roads, buildings or factories, and see how
//! different pollution levels will affect their decision makings. Also, we
//! consult with attendees about choosing the sites of air quality
//! monitoring, e.g., according to the road network and building density."
//!
//! ```sh
//! cargo run --release --example urban_planning
//! ```

use ctt::citymodel::{generate_district, overlay, PlacedSensor, P2};
use ctt::prelude::*;
use ctt_core::aqi::AqiBand;

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn main() {
    let deployment = Deployment::vejle();
    let start = deployment.started + Span::days(120); // spring
    let horizon = Span::days(2);

    // Candidate planning scenarios to discuss with attendees.
    let scenarios: Vec<(&str, ScenarioKind, f64)> = vec![
        ("baseline (no intervention)", ScenarioKind::Event, 0.0),
        (
            "construction site at Vejle midtby",
            ScenarioKind::ConstructionSite,
            1.0,
        ),
        ("new factory north of centre", ScenarioKind::Factory, 1.0),
        ("road closure on Horsensvej", ScenarioKind::RoadClosure, 1.0),
    ];

    println!("Urban planning what-if study — {} pilot\n", deployment.city);
    println!(
        "{:<38} {:>10} {:>10} {:>10}",
        "scenario", "NO₂ ppb", "PM10", "CAQI band"
    );

    for (name, kind, intensity) in scenarios {
        let mut pipeline = Pipeline::new(Deployment::vejle(), 42);
        // Fast-forward the schedule: nodes start at `started`; we simulate
        // from the deployment start to keep determinism, but only analyse
        // the final window. For a short demo, run from start for 2 days.
        if intensity > 0.0 {
            let center = match kind {
                ScenarioKind::ConstructionSite => pipeline.deployment.nodes[0].site.position,
                ScenarioKind::Factory => pipeline.deployment.center.offset(0.0, 900.0),
                _ => pipeline.deployment.nodes[1].site.position,
            };
            let mut set = ScenarioSet::new();
            set.add(Injection {
                kind,
                center,
                radius_m: 250.0,
                from: pipeline.deployment.started,
                until: start + horizon,
                intensity,
            });
            pipeline.set_scenario(set);
        }
        let end = pipeline.deployment.started + horizon;
        pipeline.run_until(end);

        // City-average pollutant levels under the scenario.
        let no2 = pipeline.city_series(
            Quantity::Pollutant(Pollutant::No2),
            pipeline.deployment.started,
            end,
        );
        let pm10 = pipeline.city_series(
            Quantity::Pollutant(Pollutant::Pm10),
            pipeline.deployment.started,
            end,
        );
        let no2_mean = mean(&no2.values().collect::<Vec<_>>());
        let pm10_mean = mean(&pm10.values().collect::<Vec<_>>());
        let caqi = ctt_core::aqi::caqi(&[
            (Pollutant::No2, no2_mean * 1.9125),
            (Pollutant::Pm10, pm10_mean),
        ])
        .map(|c| c.band())
        .unwrap_or(AqiBand::VeryLow);
        println!(
            "{name:<38} {no2_mean:>10.1} {pm10_mean:>10.1} {:>10}",
            caqi.label()
        );
    }

    // Site selection: building density across the 3D model guides where a
    // new sensor would be most representative.
    println!("\nSite selection by building density (Fig. 7 model):");
    let model = generate_district("Vejle LOD1", Deployment::vejle().center, 8, 6);
    let candidates = [
        ("city core", P2::new(0.0, 0.0)),
        ("east residential", P2::new(250.0, 0.0)),
        ("north fringe", P2::new(0.0, 240.0)),
    ];
    for (name, p) in candidates {
        println!(
            "  {:<18} density {:>12.0} m³ built / km² (r=150 m)",
            name,
            model.density_m3_per_km2(p, 150.0)
        );
    }

    // Colour the model by a heavy-pollution injection to show the visual
    // story of Fig. 7.
    let mut dirty = ctt_core::measurement::SensorReading::background(DevEui::ctt(101), start);
    dirty.no2_ppb = 140.0;
    dirty.pm10_ug_m3 = 150.0;
    let clean = ctt_core::measurement::SensorReading::background(DevEui::ctt(102), start);
    let ov = overlay(
        &model,
        vec![
            PlacedSensor {
                device: DevEui::ctt(101),
                position: P2::new(-150.0, 0.0),
                reading: dirty,
            },
            PlacedSensor {
                device: DevEui::ctt(102),
                position: P2::new(200.0, 0.0),
                reading: clean,
            },
        ],
    )
    .expect("sensors placed");
    println!("\nBuildings per CAQI band under the episode scenario:");
    for (band, n) in ov.band_histogram() {
        if n > 0 {
            println!("  {:<10} {n}", band.label());
        }
    }
}
