//! Multi-city fleet: every pilot's calendar mounted in one sharded event
//! space, dispatched slice by slice.
//!
//! A [`Fleet`] takes ownership of a set of [`Pipeline`]s and moves their
//! pending events into a [`ShardedEventQueue`], each city keyed onto a
//! shard by FNV of its slug (the `ShardedTsdb` discipline). The run loop
//! pops *time slices* — all events at the next instant, grouped by shard —
//! and dispatches the groups; because same-slice groups touch disjoint
//! shards (and therefore disjoint cities), they may run on the
//! `OrderedPool` worker pool in parallel, with outcomes merged back in
//! shard-index order. Follow-up events each dispatch files are routed back
//! into the owning shard at the merge stage, and cross-shard events (fleet
//! rollups) run at the slice barrier after every shard-local event.
//!
//! # Why this is byte-identical to sequential dispatch
//!
//! * Within a shard, events dispatch in the shard's `(time, priority,
//!   seq)` order — and a city's events keep their relative order through
//!   mount and follow-up routing, so each city sees exactly the dispatch
//!   sequence its solo `run_until` would produce.
//! * Between shards at one instant, order is fixed by shard index — never
//!   by worker scheduling. Cities on different shards share no state, so
//!   even that order is observable only in fleet-level aggregates.
//! * Follow-ups are filed at the merge stage in (shard, city-index,
//!   drain) order by the caller thread, so the per-shard seq assignment is
//!   a pure function of the schedule history, independent of worker
//!   timing. The `fleet_identity` proptest pins all of this byte-for-byte.
//!
//! The run boundary uses the same rule as [`Pipeline::run_until`] (ticks
//! and radio deadlines landing exactly on `end` belong to this run), so
//! run-splitting is invariant through the sharded path too.

use crate::pipeline::{Pipeline, SimEvent, PRIO_RADIO, PRIO_TICK};
use ctt_core::pool::{worker_width, OrderedPool};
use ctt_core::time::{Span, Timestamp};
use ctt_dataport::TwinState;
use ctt_obs::{Registry, Snapshot};
use ctt_sim::{EventKey, ShardedEventQueue, SimClock, TimeSlice};

/// Default shard count for the fleet event space — mirrors the TSDB's
/// `DEFAULT_SHARDS`, so a four-city pilot set spreads one city per shard.
pub const DEFAULT_FLEET_SHARDS: usize = 4;

/// How a [`Fleet`] partitions and dispatches its event space.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Shard count (clamped to at least 1). Cities hash onto shards by
    /// FNV-1a of their slug.
    pub shards: usize,
    /// Dispatch same-slice groups on the worker pool. Off means the same
    /// groups run on the caller thread in the same shard-index order —
    /// the byte-identity reference mode.
    pub parallel: bool,
    /// Cadence of the cross-shard fleet rollup event (`None` disables).
    pub rollup_cadence: Option<Span>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: DEFAULT_FLEET_SHARDS,
            parallel: true,
            rollup_cadence: Some(Span::hours(1)),
        }
    }
}

/// One scheduled unit in the fleet's event space.
#[derive(Debug, Clone, Copy)]
enum FleetEvent {
    /// A city-local pipeline event, owned by the city's shard.
    City {
        /// Index into the fleet's city vector.
        city: u32,
        /// The pipeline event to dispatch.
        ev: SimEvent,
    },
    /// Cross-shard rollup: aggregates fleet-wide health at the slice
    /// barrier, after every shard-local event of its instant.
    Rollup,
}

/// The unit of parallel work: one shard's event group for one slice, plus
/// the (distinct) cities those events belong to, moved in and out of the
/// fleet around the dispatch.
struct ShardJob {
    shard: usize,
    events: Vec<(EventKey, u32, SimEvent)>,
    /// The involved cities in ascending fleet index, taken from the fleet.
    cities: Vec<(u32, Pipeline)>,
    /// Follow-up events drained after dispatch, in (city, drain) order.
    followups: Vec<(u32, EventKey, SimEvent)>,
}

impl std::fmt::Debug for ShardJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardJob")
            .field("shard", &self.shard)
            .field("events", &self.events.len())
            .field("cities", &self.cities.len())
            .finish()
    }
}

/// Dispatch one shard group: the pure function run on the worker pool (or
/// inline in sequential mode — identical code either way, which is the
/// byte-identity argument made mechanical). Events run in the shard's
/// dispatch order; afterwards each involved city's follow-ups are drained
/// in ascending city order.
fn run_shard_job(mut job: ShardJob) -> ShardJob {
    let events = std::mem::take(&mut job.events);
    for (key, city, ev) in events {
        if let Some((_, p)) = job.cities.iter_mut().find(|(c, _)| *c == city) {
            p.dispatch_sliced(key, ev);
        }
    }
    for (city, p) in &mut job.cities {
        for (key, ev) in p.drain_followups() {
            job.followups.push((*city, key, ev));
        }
    }
    job
}

/// A set of city pipelines driven by one sharded event space. See the
/// module docs for the dispatch protocol and determinism argument.
#[derive(Debug)]
pub struct Fleet {
    /// `Some` except transiently while a city is out on a shard job.
    cities: Vec<Option<Pipeline>>,
    /// Shard owning each city (FNV of the city slug).
    city_shard: Vec<usize>,
    space: ShardedEventQueue<FleetEvent>,
    config: FleetConfig,
    /// Worker pool for parallel slice dispatch, spawned on first use.
    pool: Option<OrderedPool<ShardJob, ShardJob>>,
    /// Fleet time: the frontier of dispatched slices.
    clock: SimClock,
    /// Fleet-level gauges the rollup event maintains.
    registry: Registry,
}

impl Fleet {
    /// A fleet with the default configuration.
    pub fn new(pipelines: Vec<Pipeline>) -> Self {
        Fleet::with_config(pipelines, FleetConfig::default())
    }

    /// A fleet with an explicit [`FleetConfig`]. Every pipeline's pending
    /// calendar is mounted into the sharded space, preserving per-city
    /// dispatch order.
    pub fn with_config(pipelines: Vec<Pipeline>, config: FleetConfig) -> Self {
        let mut space = ShardedEventQueue::new(config.shards);
        let mut cities: Vec<Option<Pipeline>> = Vec::with_capacity(pipelines.len());
        let mut city_shard = Vec::with_capacity(pipelines.len());
        let mut start: Option<Timestamp> = None;
        for (idx, mut p) in pipelines.into_iter().enumerate() {
            let shard = space.shard_of(&p.deployment.city.to_lowercase());
            for (key, ev) in p.unmount_events() {
                space.schedule(
                    shard,
                    key.time,
                    key.priority,
                    FleetEvent::City {
                        city: idx as u32,
                        ev,
                    },
                );
            }
            start = Some(start.map_or(p.now(), |s: Timestamp| s.min(p.now())));
            city_shard.push(shard);
            cities.push(Some(p));
        }
        let clock = SimClock::new(start.unwrap_or(Timestamp(0)));
        if let Some(cadence) = config.rollup_cadence {
            space.schedule_cross(clock.now() + cadence, PRIO_TICK, FleetEvent::Rollup);
        }
        Fleet {
            cities,
            city_shard,
            space,
            config,
            pool: None,
            clock,
            registry: Registry::new(),
        }
    }

    /// Number of cities in the fleet.
    pub fn len(&self) -> usize {
        self.cities.len()
    }

    /// Whether the fleet has no cities.
    pub fn is_empty(&self) -> bool {
        self.cities.is_empty()
    }

    /// Fleet time (the frontier of dispatched slices).
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// The city at fleet index `idx`.
    pub fn city(&self, idx: usize) -> Option<&Pipeline> {
        self.cities.get(idx).and_then(Option::as_ref)
    }

    /// The cities in fleet order.
    pub fn cities(&self) -> impl Iterator<Item = &Pipeline> {
        self.cities.iter().filter_map(Option::as_ref)
    }

    /// Advance every city until `end` by dispatching time slices from the
    /// sharded space, then settle each city's open radio windows (the same
    /// end-of-segment pass the solo runner makes, per city in fleet
    /// order). Uses the solo boundary rule, so splitting a run at any
    /// point replays identically.
    pub fn run_until(&mut self, end: Timestamp) {
        while let Some(slice) = self.space.pop_slice_until(end, PRIO_RADIO) {
            self.clock.advance(slice.time);
            self.dispatch_slice(slice);
        }
        for idx in 0..self.cities.len() {
            if let Some(p) = self.cities.get_mut(idx).and_then(Option::as_mut) {
                p.finish_segment(end);
            }
            self.mount_followups(idx);
        }
        self.clock.advance(end);
    }

    /// Dispatch one slice: shard groups first (parallel when configured,
    /// merged in shard-index order), then the cross lane at the barrier.
    fn dispatch_slice(&mut self, slice: TimeSlice<FleetEvent>) {
        let time = slice.time;
        // Partition the shard groups into jobs and move each involved
        // city out of the fleet and into its (single) job.
        let mut jobs: Vec<ShardJob> = Vec::with_capacity(slice.shards.len());
        for (shard, group) in slice.shards {
            let mut events = Vec::with_capacity(group.len());
            for (key, fe) in group {
                if let FleetEvent::City { city, ev } = fe {
                    events.push((key, city, ev));
                }
            }
            if events.is_empty() {
                continue;
            }
            let mut involved: Vec<u32> = events.iter().map(|&(_, c, _)| c).collect();
            involved.sort_unstable();
            involved.dedup();
            let mut cities = Vec::with_capacity(involved.len());
            for c in involved {
                if let Some(p) = self.cities.get_mut(c as usize).and_then(Option::take) {
                    cities.push((c, p));
                }
            }
            jobs.push(ShardJob {
                shard,
                events,
                cities,
                followups: Vec::new(),
            });
        }
        // Disjoint shards → disjoint cities: the groups may race freely.
        // The pool merges results back into submission (= shard) order,
        // and sequential mode runs the identical function in the identical
        // order, so the two modes are byte-equivalent.
        let done: Vec<ShardJob> = if self.config.parallel && jobs.len() > 1 {
            let pool = self
                .pool
                .take()
                .unwrap_or_else(|| OrderedPool::new(worker_width(2, 8), run_shard_job));
            let done = pool.map(jobs);
            self.pool = Some(pool);
            done
        } else {
            jobs.into_iter().map(run_shard_job).collect()
        };
        // Merge stage: restore cities, then file follow-ups back into the
        // owning shard in (shard, city, drain) order — all on this thread,
        // so per-shard seq assignment is schedule-history-pure.
        for job in done {
            for (c, p) in job.cities {
                if let Some(slot) = self.cities.get_mut(c as usize) {
                    *slot = Some(p);
                }
            }
            for (c, key, ev) in job.followups {
                self.space.schedule(
                    job.shard,
                    key.time,
                    key.priority,
                    FleetEvent::City { city: c, ev },
                );
            }
        }
        // Cross lane at the barrier: after every shard-local event of the
        // slice, in the lane's own dispatch order.
        for (_key, fe) in slice.cross {
            if let FleetEvent::Rollup = fe {
                self.rollup(time);
            }
        }
    }

    /// Route a city's pending private-calendar events (filed outside
    /// slice dispatch, e.g. by `finish_segment`) into its shard.
    fn mount_followups(&mut self, idx: usize) {
        let followups = match self.cities.get_mut(idx).and_then(Option::as_mut) {
            Some(p) => p.drain_followups(),
            None => return,
        };
        let shard = self.city_shard.get(idx).copied().unwrap_or(0);
        for (key, ev) in followups {
            self.space.schedule(
                shard,
                key.time,
                key.priority,
                FleetEvent::City {
                    city: idx as u32,
                    ev,
                },
            );
        }
    }

    /// The cross-shard rollup: fold per-city health into fleet gauges and
    /// reschedule at the configured cadence. Reads every city (that is
    /// what makes it cross-shard); runs only at the slice barrier.
    fn rollup(&mut self, now: Timestamp) {
        let mut readings = 0u64;
        let mut stored = 0u64;
        let mut online = 0i64;
        let mut alarms = 0i64;
        for p in self.cities.iter().filter_map(Option::as_ref) {
            let st = p.stats();
            readings += st.readings;
            stored += st.points_stored;
            let snap = p.dataport.snapshot(now);
            online += snap
                .sensors
                .iter()
                .filter(|s| s.state == TwinState::Online)
                .count() as i64;
            alarms += p.dataport.active_alarms().len() as i64;
        }
        self.registry.gauge("fleet.readings").set(readings as i64);
        self.registry
            .gauge("fleet.points_stored")
            .set(stored as i64);
        self.registry.gauge("fleet.sensors_online").set(online);
        self.registry.gauge("fleet.active_alarms").set(alarms);
        if let Some(cadence) = self.config.rollup_cadence {
            self.space
                .schedule_cross(now + cadence, PRIO_TICK, FleetEvent::Rollup);
        }
    }

    /// Fleet-level metrics: the rollup gauges plus the sharded space's
    /// dispatch profile (`sim.shard<i>.dispatched`, `sim.cross_shard_events`,
    /// the slice-width histogram). Byte-identical across replays of the
    /// same fleet configuration.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = self.registry.snapshot(self.clock.now());
        snap.push_gauge("fleet.cities", self.cities.len() as i64);
        self.space.publish(&mut snap);
        snap
    }

    /// Canonical rendering of the space's dispatch profile: per-shard
    /// dispatch counts, cross-lane count, and the slice-width histogram
    /// with percentile estimates. Byte-identical across replays.
    pub fn scheduling_profile(&self) -> String {
        self.space.render_profile()
    }

    /// Dissolve the fleet back into its pipelines (fleet order): every
    /// city's still-pending events are unmounted from the space and filed
    /// back into its private calendar, so a returned pipeline's solo
    /// `run_until` continues exactly where the fleet stopped. Cross-lane
    /// events (fleet rollups) belong to the fleet, not any city, and are
    /// dropped.
    pub fn into_pipelines(mut self) -> Vec<Pipeline> {
        let mut per_city: Vec<Vec<(EventKey, SimEvent)>> =
            (0..self.cities.len()).map(|_| Vec::new()).collect();
        for (_shard, events) in self.space.drain_shards() {
            for (key, fe) in events {
                if let FleetEvent::City { city, ev } = fe {
                    if let Some(bucket) = per_city.get_mut(city as usize) {
                        bucket.push((key, ev));
                    }
                }
            }
        }
        let _ = self.space.drain_cross();
        let mut out = Vec::with_capacity(self.cities.len());
        for (idx, slot) in self.cities.iter_mut().enumerate() {
            let Some(mut p) = slot.take() else { continue };
            if let Some(bucket) = per_city.get_mut(idx) {
                for (key, ev) in bucket.drain(..) {
                    p.remount_event(key.time, key.priority, ev);
                }
            }
            out.push(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctt_core::deployment::Deployment;

    fn observables(p: &Pipeline) -> (String, String, crate::pipeline::PipelineStats, u64) {
        (
            p.ledger().render(),
            p.alarm_trace(),
            p.stats(),
            p.tsdb.stats().points,
        )
    }

    #[test]
    fn fleet_matches_solo_pipelines() {
        let build = || {
            vec![
                Pipeline::new(Deployment::vejle(), 7),
                Pipeline::new(Deployment::trondheim(), 7),
            ]
        };
        let end = Deployment::vejle().started + Span::hours(3);
        let mut solo = build();
        for p in &mut solo {
            p.run_until(end);
        }
        let mut fleet = Fleet::new(build());
        fleet.run_until(end);
        let back = fleet.into_pipelines();
        assert_eq!(back.len(), solo.len());
        for (f, s) in back.iter().zip(solo.iter()) {
            assert_eq!(observables(f), observables(s), "{}", f.deployment.city);
        }
    }

    #[test]
    fn into_pipelines_resumes_solo_exactly() {
        let end_a = Deployment::vejle().started + Span::hours(1);
        let end_b = Deployment::vejle().started + Span::hours(2);
        // Fleet for the first hour, solo for the second...
        let mut fleet = Fleet::new(vec![Pipeline::new(Deployment::vejle(), 42)]);
        fleet.run_until(end_a);
        let mut resumed = fleet.into_pipelines();
        for p in &mut resumed {
            p.run_until(end_b);
        }
        // ...must equal solo all the way.
        let mut solo = Pipeline::new(Deployment::vejle(), 42);
        solo.run_until(end_b);
        let r = resumed.first().expect("one city");
        assert_eq!(observables(r), observables(&solo));
    }

    #[test]
    fn rollup_maintains_fleet_gauges() {
        let mut fleet = Fleet::new(vec![
            Pipeline::new(Deployment::vejle(), 1),
            Pipeline::new(Deployment::trondheim(), 1),
        ]);
        fleet.run_until(Deployment::vejle().started + Span::hours(2));
        let snap = fleet.metrics_snapshot();
        assert_eq!(snap.value("fleet.cities"), Some(2));
        assert_eq!(snap.value("fleet.sensors_online"), Some(14));
        assert!(snap.value("fleet.readings").unwrap_or(0) > 0);
        assert!(snap.value("sim.cross_shard_events").unwrap_or(0) >= 2);
        let profile = fleet.scheduling_profile();
        assert!(profile.contains("slice_width"), "{profile}");
    }
}
