//! # ctt — Carbon Track & Trace: urban emission monitoring in Smart Cities
//!
//! A full Rust reproduction of *"Analysis and Visualization of Urban
//! Emission Measurements in Smart Cities"* (Ahlers et al., EDBT 2018): an
//! ecosystem for collecting, integrating, analyzing and visualizing
//! real-time air quality data from low-cost IoT sensors.
//!
//! The [`Pipeline`] assembles the architecture of the paper's Fig. 1:
//!
//! ```text
//! sensor nodes → LoRaWAN radio sim → network server (dedup/ADR)
//!      → MQTT broker → time-series DB + dataport (digital twins, alarms)
//!      → analytics → SVG dashboards / maps / 3D city model
//! ```
//!
//! Quick start:
//!
//! ```
//! use ctt::prelude::*;
//!
//! let mut pipeline = Pipeline::new(Deployment::vejle(), 42);
//! let start = pipeline.deployment.started;
//! pipeline.run_until(start + Span::hours(1));
//! assert!(pipeline.stats().delivered > 0);
//! ```
//!
//! The sub-crates are re-exported: [`core`](ctt_core), [`lorawan`](ctt_lorawan),
//! [`broker`](ctt_broker), [`tsdb`](ctt_tsdb), [`dataport`](ctt_dataport),
//! [`integration`](ctt_integration), [`analytics`](ctt_analytics),
//! [`citymodel`](ctt_citymodel), [`viz`](ctt_viz).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod fleet;
pub mod parallel;
pub mod pipeline;

pub use ctt_analytics as analytics;
pub use ctt_broker as broker;
pub use ctt_chaos as chaos;
pub use ctt_citymodel as citymodel;
pub use ctt_core as core;
pub use ctt_dataport as dataport;
pub use ctt_integration as integration;
pub use ctt_lorawan as lorawan;
pub use ctt_obs as obs;
pub use ctt_sim as sim;
pub use ctt_tsdb as tsdb;
pub use ctt_viz as viz;

pub use fleet::{Fleet, FleetConfig, DEFAULT_FLEET_SHARDS};
pub use parallel::{run_cities_parallel, worker_width, OrderedPool};
pub use pipeline::{Pipeline, PipelineStats};

/// Commonly used items for examples and applications.
pub mod prelude {
    pub use crate::fleet::{Fleet, FleetConfig};
    pub use crate::pipeline::{Pipeline, PipelineStats};
    pub use ctt_core::deployment::Deployment;
    pub use ctt_core::ids::{DevEui, GatewayId};
    pub use ctt_core::measurement::{SensorReading, Series};
    pub use ctt_core::quantity::{Pollutant, Quantity};
    pub use ctt_core::scenario::{Injection, ScenarioKind, ScenarioSet};
    pub use ctt_core::time::{Span, TimeRange, Timestamp};
}
