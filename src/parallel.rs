//! Deterministic parallelism: re-exports of the `ctt_core::pool` worker
//! pool (which lives in `ctt-core` so lower layers like `ctt-tsdb` can use
//! it for parallel per-shard query collection), plus the fork/join helper
//! for running whole city pipelines side by side.
//!
//! Parallel execution must not perturb replay: the PR 2 determinism tests
//! compare alarm traces and TSDB contents byte for byte across runs. The
//! rule every utility here follows is *sequence everywhere*: each unit of
//! work carries its submission index, workers race freely, and results are
//! merged back into submission order before any stateful consumer sees
//! them. Scheduling nondeterminism therefore never escapes the pool.

pub use ctt_core::pool::{join_all, worker_width, OrderedPool};

/// Advance several city pipelines concurrently, each on its own worker,
/// until `horizon` past its deployment start. Returns the pipelines in the
/// order given. Equivalent to calling [`crate::Pipeline::run_until`] on
/// each sequentially — the pipelines share no state.
pub fn run_cities_parallel(
    pipelines: Vec<crate::Pipeline>,
    horizon: ctt_core::time::Span,
) -> Vec<crate::Pipeline> {
    join_all(
        pipelines
            .into_iter()
            .map(|mut p| {
                move || {
                    let end = p.deployment.started + horizon;
                    p.run_until(end);
                    p
                }
            })
            .collect(),
    )
}
