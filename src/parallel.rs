//! Deterministic parallelism: re-exports of the `ctt_core::pool` worker
//! pool (which lives in `ctt-core` so lower layers like `ctt-tsdb` can use
//! it for parallel per-shard query collection), plus the compatibility
//! facade for running whole city pipelines side by side.
//!
//! Parallel execution must not perturb replay: the PR 2 determinism tests
//! compare alarm traces and TSDB contents byte for byte across runs. The
//! rule every utility here follows is *sequence everywhere*: each unit of
//! work carries its submission index, workers race freely, and results are
//! merged back into submission order before any stateful consumer sees
//! them. Scheduling nondeterminism therefore never escapes the pool.

pub use ctt_core::pool::{join_all, worker_width, OrderedPool};

use crate::fleet::Fleet;

/// Advance several city pipelines concurrently until `horizon` past each
/// deployment's start. Returns the pipelines in the order given, with
/// observables byte-identical to calling [`crate::Pipeline::run_until`] on
/// each sequentially.
///
/// **Deprecation note:** this is now a thin compatibility facade over
/// [`crate::Fleet`], which mounts every pipeline's calendar into one
/// sharded event space and dispatches same-instant slices on disjoint
/// shards in parallel. New code should build a `Fleet` directly — it keeps
/// the cities resident (no per-call mount/unmount), supports cross-shard
/// rollup events, and exposes the space's dispatch profile. The one case
/// still served by the old fork/join path is a pipeline set whose
/// deployments started at different instants (heterogeneous horizons), for
/// which the fleet's single `end` is not expressible.
pub fn run_cities_parallel(
    pipelines: Vec<crate::Pipeline>,
    horizon: ctt_core::time::Span,
) -> Vec<crate::Pipeline> {
    let mut ends = pipelines.iter().map(|p| p.deployment.started + horizon);
    let first = ends.next();
    let uniform = ends.all(|e| Some(e) == first);
    match (first, uniform) {
        (Some(end), true) => {
            let mut fleet = Fleet::new(pipelines);
            fleet.run_until(end);
            fleet.into_pipelines()
        }
        // Heterogeneous start instants (or an empty set): the legacy
        // fork/join path, one worker per city.
        _ => join_all(
            pipelines
                .into_iter()
                .map(|mut p| {
                    move || {
                        let end = p.deployment.started + horizon;
                        p.run_until(end);
                        p
                    }
                })
                .collect(),
        ),
    }
}
