//! The end-to-end CTT pipeline (Fig. 1).
//!
//! Wires every subsystem along the paper's data path: sensor nodes sample
//! the emission field and transmit over the simulated LoRaWAN network; the
//! network server deduplicates and runs ADR; uplinks are published to the
//! MQTT broker in TTN shape; the storage consumer decodes payloads into
//! the time-series database; and the dataport's digital twins monitor the
//! whole flow. One `Pipeline` is one city pilot.
//!
//! Time is driven by the [`ctt_sim`] discrete-event core: node
//! transmissions, radio window deadlines, dataport ticks, and chaos
//! transitions (including due TSDB bit flips) are all events in one
//! [`EventQueue`], dispatched in `(time, priority, seq)` order. Same-instant
//! events run ticks first, then radio resolutions, then chaos transitions,
//! then transmissions — the order the old lockstep loop implied — and the
//! pinned key is what makes `run_until(a); run_until(b)` replay exactly
//! like `run_until(b)`.

use crate::parallel::{worker_width, OrderedPool};
use ctt_broker::{Admission, AdmissionControl, Broker, QoS, RetryPolicy, Subscriber, UplinkEvent};
use ctt_chaos::{CauseCode, ChaosEngine, FaultPlan, FrameFault, InjectionStats, LossLedger};
use ctt_core::deployment::Deployment;
use ctt_core::emission::EmissionModel;
use ctt_core::ids::{DevEui, GatewayId};
use ctt_core::measurement::{SensorReading, Series};
use ctt_core::node::{NodeHealth, SensorNode};
use ctt_core::payload;
use ctt_core::quantity::Quantity;
use ctt_core::scenario::ScenarioSet;
use ctt_core::time::{Span, Timestamp};
use ctt_core::units::Dbm;
use ctt_dataport::{AlarmKind, Dataport, DataportConfig};
use ctt_ingest::{IngestConfig, IngestRuntime};
use ctt_lorawan::{
    collision_horizon, DataRate, GatewayConfig, LinkBackoff, NetworkServer, RadioSimulator,
    SimConfig, TxRequest, UplinkFrame, UplinkRecord,
};
use ctt_obs::{Counter, FlightRecorder, Registry, Snapshot};
use ctt_sim::{EventKey, EventQueue, QueueObs, Schedulable, SimClock};
use ctt_tsdb::{Aggregator, BitFlipOutcome, DataPoint, Query, ShardedTsdb, DEFAULT_SHARDS};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Arc;

/// Pipeline counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Readings produced by nodes.
    pub readings: u64,
    /// Uplinks delivered by the radio network.
    pub delivered: u64,
    /// Uplinks lost in the radio network (all causes).
    pub radio_lost: u64,
    /// Data points written to the TSDB.
    pub points_stored: u64,
    /// Payloads that failed to decode.
    pub decode_errors: u64,
    /// ADR commands applied to devices.
    pub adr_commands: u64,
}

/// Per-device radio state (data rate and power under ADR).
#[derive(Debug, Clone, Copy)]
struct RadioState {
    data_rate: DataRate,
    tx_power_dbm: f64,
    fcnt: u16,
    /// Device-side fallback: slow down after consecutive unheard uplinks.
    backoff: LinkBackoff,
}

impl Default for RadioState {
    fn default() -> Self {
        RadioState {
            data_rate: DataRate(2), // SF10: a sane EU868 starting point
            tx_power_dbm: 14.0,
            fcnt: 0,
            backoff: LinkBackoff::new(4),
        }
    }
}

/// What the parallel decode stage produced for one delivery, in delivery
/// order. Decoding is pure, so fanning it out to workers cannot perturb
/// replay; everything stateful stays in the serial apply stage.
#[derive(Debug)]
enum DecodeOutcome {
    /// Event + payload decoded; ready to store.
    Decoded(Box<(UplinkEvent, SensorReading)>),
    /// The event envelope decoded but the sensor payload did not.
    BadPayload {
        /// Device the event named (for loss attribution).
        device: DevEui,
        /// Transport time of the event.
        time: Timestamp,
    },
    /// The event envelope itself failed to decode.
    BadEvent,
}

/// Decode one delivery payload (the pure function run on the worker pool).
fn decode_delivery(bytes: Arc<Vec<u8>>) -> DecodeOutcome {
    let Ok(event) = UplinkEvent::decode(&bytes) else {
        return DecodeOutcome::BadEvent;
    };
    match payload::decode(&event.payload, event.device, event.time) {
        Ok(reading) => DecodeOutcome::Decoded(Box::new((event, reading))),
        Err(_) => DecodeOutcome::BadPayload {
            device: event.device,
            time: event.time,
        },
    }
}

/// Worker width for the decode stage: the machine's parallelism, bounded so
/// a fleet of test pipelines doesn't oversubscribe the host.
fn decode_workers() -> usize {
    worker_width(2, 8)
}

// Priority classes for same-instant events, in dispatch order. Ticks run
// before anything else at the same instant (the lockstep loop drained ticks
// `<= due` first); radio deadlines resolve before chaos and transmissions
// (a window ending at `t` cannot overlap a transmission starting at `t`,
// so resolving first is outcome-neutral — and it is what makes the
// `run_until` boundary split-invariant); chaos transitions apply before
// the node steps that observe them.
pub(crate) const PRIO_TICK: u8 = 0;
pub(crate) const PRIO_RADIO: u8 = 1;
const PRIO_CHAOS: u8 = 2;
const PRIO_NODE: u8 = 3;
/// Scheduled storage drains run after everything else at an instant: the
/// backlog they work off was produced by that instant's other events.
const PRIO_DRAIN: u8 = 4;

/// Default per-dispatch storage drain batch. Sized above any healthy-run
/// burst (a resolve delivers at most the fleet's in-flight windows), so a
/// healthy pipeline never schedules a drain event and replays of pre-drain
/// seeds stay byte-identical; overload runs bound each dispatch to this.
const DEFAULT_DRAIN_BATCH: usize = 64;

/// EUI base for synthetic traffic-spike devices. Far above any deployment's
/// sequential numbering, so spike traffic can never collide with a real
/// device's ledger keys.
const SPIKE_EUI_BASE: u32 = 0x00FA_0000;

/// How many span events the pipeline's flight recorder retains. Sized for
/// post-mortems: enough dispatch context around a failure, bounded so a
/// week-long soak costs the same memory as a minute-long one.
const FLIGHT_RECORDER_CAPACITY: usize = 256;

/// Chaos fault-activation counters, registered as `chaos.activation.*`.
/// Incremented pipeline-side at the points where the engine is consulted,
/// so the engine itself stays a pure fault-plan interpreter.
#[derive(Debug, Clone)]
struct ChaosObs {
    frame_fault: Counter,
    bitflip: Counter,
    death_edge: Counter,
    /// Distinct broker-stall windows the consumer observed (edge-counted).
    broker_stall: Counter,
    /// Raw tally of consumer runs skipped while stalled (`broker.stall_ticks`).
    stall_ticks: Counter,
}

impl ChaosObs {
    fn register(registry: &Registry) -> Self {
        ChaosObs {
            frame_fault: registry.counter("chaos.activation.frame_fault"),
            bitflip: registry.counter("chaos.activation.bitflip"),
            death_edge: registry.counter("chaos.activation.death_edge"),
            broker_stall: registry.counter("chaos.activation.broker_stall"),
            stall_ticks: registry.counter("broker.stall_ticks"),
        }
    }
}

/// One scheduled pipeline event. All five time-driven sources (node tx,
/// radio window resolution, dataport tick, chaos window transition, due
/// TSDB bit flip) dispatch through the [`EventQueue`]; bit flips ride the
/// chaos-transition events their fire times are scheduled under.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SimEvent {
    /// Periodic dataport twin/component tick; reschedules itself at the
    /// dataport's registered cadence.
    DataportTick,
    /// An in-flight radio window's airtime-derived deadline: resolve every
    /// window ending by now and push the outcomes downstream.
    RadioResolve,
    /// Windowed chaos state changes: node-death edges and due bit flips.
    ChaosTransition,
    /// The node at this deployment index is due to transmit.
    NodeTx(usize),
    /// A scheduled bounded storage drain: work off at most `drain_batch`
    /// backlogged deliveries, then reschedule while backlog remains. Only
    /// ever scheduled when a drain pass leaves backlog behind, so healthy
    /// runs never see one.
    StorageDrain,
}

impl SimEvent {
    /// Stable payload discriminant, used as the dispatch-trace label and as
    /// the flight-recorder stage name for this event's dispatch span.
    fn label(&self) -> &'static str {
        match self {
            SimEvent::DataportTick => "tick",
            SimEvent::RadioResolve => "radio",
            SimEvent::ChaosTransition => "chaos",
            SimEvent::NodeTx(_) => "node-tx",
            SimEvent::StorageDrain => "drain",
        }
    }
}

/// The assembled city pipeline.
#[derive(Debug)]
pub struct Pipeline {
    /// The pilot configuration.
    pub deployment: Deployment,
    emission: EmissionModel,
    nodes: Vec<SensorNode>,
    radio: RadioSimulator,
    server: NetworkServer,
    broker: Broker,
    storage_sub: Subscriber,
    /// The time-series store (public: queried by analyses and dashboards).
    /// Sharded by series-key hash; safe to query while other threads write.
    pub tsdb: ShardedTsdb,
    /// The staged ingest runtime in front of the store: one single-writer
    /// lane per shard. All pipeline writes go through it; every read path
    /// crosses a flush barrier first, so replay stays byte-identical.
    ingest: IngestRuntime,
    /// Worker pool for the storage consumer's decode stage. Results are
    /// merged in delivery order, so replay stays byte-identical.
    decode_pool: OrderedPool<Arc<Vec<u8>>, DecodeOutcome>,
    /// The monitoring dataport.
    pub dataport: Dataport,
    radio_state: HashMap<DevEui, RadioState>,
    scenario: ScenarioSet,
    city_slug: String,
    /// The single monotone simulation clock, advanced only by dispatch.
    clock: SimClock,
    /// The discrete-event calendar every time-driven layer schedules into.
    events: EventQueue<SimEvent>,
    stats: PipelineStats,
    seed: u64,
    /// Fault-injection interpreter, when chaos is attached.
    chaos: Option<ChaosEngine>,
    /// Conservation accounting — maintained on every run, chaos or not.
    ledger: LossLedger,
    /// Death state currently applied to each node, so health toggles only
    /// on window edges (a revived node must not clobber other injections).
    chaos_dead: HashMap<DevEui, bool>,
    /// Deployment order of each device, for health toggling by EUI.
    node_index: HashMap<DevEui, usize>,
    /// The metrics registry every layer publishes into (broker subscriber
    /// counters, TSDB shard counters, chaos activations).
    registry: Registry,
    /// Chaos fault-activation counters (registered even when no plan is
    /// attached, so snapshots have a stable shape).
    chaos_obs: ChaosObs,
    /// Ring of recent stage enter/exit spans, dumped on soak failures.
    recorder: FlightRecorder,
    /// Max deliveries one storage drain dispatch processes.
    drain_batch: usize,
    /// Whether a [`SimEvent::StorageDrain`] is outstanding. While one is,
    /// opportunistic consumer runs stand down: all backlog work happens
    /// through scheduled drains, which keeps segmented runs split-invariant.
    drain_scheduled: bool,
    /// Whether the consumer is currently inside an injected stall window
    /// (edge state for counting distinct windows, not skipped runs).
    stall_active: bool,
    /// Bridge admission control, when the chaos plan enables it.
    admission: Option<AdmissionControl>,
    /// Uplink records the admission controller deferred, awaiting tokens.
    /// Bounded by the controller's per-gateway defer cap.
    admission_pending: VecDeque<UplinkRecord>,
    /// Synthetic-device allocation state for traffic-spike amplification:
    /// the instant last amplified and the count handed out at it. Devices
    /// are reused across instants (bounded twin population) but distinct
    /// within one (distinct ledger keys).
    spike_at: Option<Timestamp>,
    spike_seq: u32,
}

impl Pipeline {
    /// Build the pipeline for a deployment.
    pub fn new(deployment: Deployment, seed: u64) -> Self {
        let emission = deployment.emission_model(seed);
        let nodes = deployment.spawn_nodes(seed);
        let gateways = deployment
            .gateways
            .iter()
            .map(|g| GatewayConfig::standard(g.id, g.position, g.antenna_m))
            .collect();
        let radio = RadioSimulator::new(SimConfig::urban(seed), gateways);
        let registry = Registry::new();
        let chaos_obs = ChaosObs::register(&registry);
        let broker = Broker::with_registry(registry.clone());
        let storage_sub = broker.subscribe(UplinkEvent::all_filter(), QoS::AtLeastOnce, 65_536);
        let mut tsdb = ShardedTsdb::new(DEFAULT_SHARDS);
        tsdb.attach_registry(&registry);
        // The runtime captures per-shard writer handles (and the shard put
        // counters), so it must be built after attach_registry.
        let ingest = IngestRuntime::new(&tsdb, &registry, IngestConfig::default());
        let mut dataport = Dataport::new(DataportConfig::default());
        for n in &deployment.nodes {
            dataport.register_sensor(n.eui);
        }
        for g in &deployment.gateways {
            dataport.register_gateway(g.id);
        }
        let city_slug = deployment.city.to_lowercase();
        let start = deployment.started;
        let node_index = deployment
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.eui, i))
            .collect();
        // Seed the calendar: the first dataport tick at the deployment
        // start, and one transmission event per node at its phase-jittered
        // first due time (deployment order pins same-instant ties).
        let mut events = EventQueue::new();
        // Dispatch instrumentation is always attached: the record step is a
        // handful of plain-integer adds (bench-gated), and an always-on
        // profile means replay comparisons need no special build.
        events.attach_obs(QueueObs::new(SimEvent::label));
        events.schedule(start, PRIO_TICK, SimEvent::DataportTick);
        for (i, n) in nodes.iter().enumerate() {
            events.schedule(n.next_due(), PRIO_NODE, SimEvent::NodeTx(i));
        }
        Pipeline {
            deployment,
            emission,
            nodes,
            radio,
            server: NetworkServer::new(),
            broker,
            storage_sub,
            tsdb,
            ingest,
            decode_pool: OrderedPool::new(decode_workers(), decode_delivery),
            dataport,
            radio_state: HashMap::new(),
            scenario: ScenarioSet::new(),
            city_slug,
            clock: SimClock::new(start),
            events,
            stats: PipelineStats::default(),
            seed,
            chaos: None,
            ledger: LossLedger::new(),
            chaos_dead: HashMap::new(),
            node_index,
            registry,
            chaos_obs,
            recorder: FlightRecorder::new(FLIGHT_RECORDER_CAPACITY),
            drain_batch: DEFAULT_DRAIN_BATCH,
            drain_scheduled: false,
            stall_active: false,
            admission: None,
            admission_pending: VecDeque::new(),
            spike_at: None,
            spike_seq: 0,
        }
    }

    /// Build a pipeline with a chaos plan attached from the start.
    pub fn with_chaos(deployment: Deployment, seed: u64, plan: FaultPlan) -> Self {
        let mut p = Pipeline::new(deployment, seed);
        p.attach_chaos(plan);
        p
    }

    /// Attach a fault plan. Gateway outage windows are handed to the radio
    /// simulator; everything else is consulted at stage boundaries while
    /// the simulation runs. The engine is seeded with the pipeline seed, so
    /// the same (seed, plan) pair replays byte-identically.
    pub fn attach_chaos(&mut self, plan: FaultPlan) {
        if plan.storage_queue_capacity.is_some() || plan.storage_inflight_cap.is_some() {
            let capacity = plan.storage_queue_capacity.unwrap_or(65_536);
            self.broker.unsubscribe(&self.storage_sub);
            self.storage_sub = match plan.storage_inflight_cap {
                // Bounded in-flight store: past the cap the broker sheds
                // QoS1 overflow, which this pipeline owns as
                // `Lost(Backpressure)` at the publish site.
                Some(cap) => self.broker.subscribe_bounded(
                    UplinkEvent::all_filter(),
                    QoS::AtLeastOnce,
                    capacity,
                    cap,
                ),
                None => {
                    self.broker
                        .subscribe(UplinkEvent::all_filter(), QoS::AtLeastOnce, capacity)
                }
            };
        }
        if let Some(batch) = plan.drain_batch {
            self.drain_batch = batch.max(1);
        }
        if let Some(cfg) = plan.admission {
            self.admission = Some(AdmissionControl::new(
                cfg.burst,
                cfg.refill_per_hour,
                cfg.defer_cap,
            ));
        }
        let engine = ChaosEngine::new(self.seed, plan);
        self.radio.set_outages(engine.outage_windows());
        // Register the engine's windowed-state transitions (death edges,
        // bit-flip fire times) as events; past instants clamp to now so a
        // late attach still applies them on the next dispatch.
        let now = self.clock.now();
        for t in engine.transition_times() {
            self.events
                .schedule(t.max(now), PRIO_CHAOS, SimEvent::ChaosTransition);
        }
        self.chaos = Some(engine);
    }

    /// Current simulation time.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// The emission ground truth (for experiment comparisons).
    pub fn emission(&self) -> &EmissionModel {
        &self.emission
    }

    /// The broker (to attach extra live consumers, e.g. dashboards).
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// Mutable node access (fault injection).
    pub fn nodes_mut(&mut self) -> &mut [SensorNode] {
        &mut self.nodes
    }

    /// Install a synthetic-pollution scenario overlaid on node readings
    /// (the §3 "inject synthetic data showing different pollution levels").
    pub fn set_scenario(&mut self, scenario: ScenarioSet) {
        self.scenario = scenario;
    }

    /// Counters so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Radio network statistics.
    pub fn radio_stats(&self) -> ctt_lorawan::SimStats {
        self.radio.stats()
    }

    /// The loss ledger (conservation accounting for every uplink).
    pub fn ledger(&self) -> &LossLedger {
        &self.ledger
    }

    /// What the chaos engine has injected so far (zero when no plan).
    pub fn chaos_stats(&self) -> InjectionStats {
        self.chaos
            .as_ref()
            .map(|c| c.injected())
            .unwrap_or_default()
    }

    /// Canonical rendering of the dataport's append-only alarm log, one
    /// line per raise/clear in order. Byte-identical across replays of the
    /// same seed + plan — determinism tests compare this directly.
    pub fn alarm_trace(&self) -> String {
        let mut out = String::new();
        for a in self.dataport.alarm_log() {
            let _ = writeln!(
                out,
                "t={} {:?} [{}] {} {}",
                a.time.as_seconds(),
                a.kind,
                a.severity,
                a.source,
                a.message
            );
        }
        out
    }

    /// The metrics registry every layer of this pipeline publishes into
    /// (broker subscriber counters, TSDB shard counters, chaos activations).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The flight recorder: the ring of recent stage enter/exit spans.
    /// Soak harnesses dump this on ledger-imbalance or alarm-mismatch.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Keep a bounded trace of the next `capacity` event dispatches — the
    /// `(time, priority, seq)` key plus the payload discriminant of each.
    /// Dispatch counters are unaffected; the trace shows up in
    /// [`Pipeline::scheduling_profile`].
    pub fn enable_dispatch_trace(&mut self, capacity: usize) {
        if let Some(obs) = self.events.obs_mut() {
            obs.enable_trace(capacity);
        }
    }

    /// Capture every metric — registered cells plus stage-boundary,
    /// ledger-cause, and scheduler values — at the current simulation time.
    /// Byte-identical (CSV and JSON) across replays of the same seed+plan.
    pub fn metrics_snapshot(&self) -> Snapshot {
        // Barrier first: every in-flight ingest batch lands before the
        // registry is read, so shard puts / ingest counters are exact and
        // replay-deterministic.
        self.ingest.flush();
        let mut snap = self.registry.snapshot(self.clock.now());
        snap.push_counter("stage.node.readings", self.stats.readings);
        snap.push_counter("stage.radio.delivered", self.stats.delivered);
        snap.push_counter("stage.radio.lost", self.stats.radio_lost);
        let bs = self.broker.stats();
        snap.push_counter("stage.broker.published", bs.published);
        snap.push_counter("stage.broker.delivered", bs.delivered);
        snap.push_counter("stage.broker.dropped_qos0", bs.dropped_qos0);
        snap.push_counter("stage.broker.deferred_qos1", bs.deferred_qos1);
        snap.push_counter("stage.broker.redelivered", bs.redelivered);
        snap.push_counter("stage.broker.shed", bs.shed);
        snap.push_gauge("stage.broker.retained", bs.retained as i64);
        snap.push_gauge("stage.broker.subscriptions", bs.subscriptions as i64);
        snap.push_counter("stage.server.adr_commands", self.stats.adr_commands);
        snap.push_counter("stage.tsdb.points_stored", self.stats.points_stored);
        snap.push_counter("stage.tsdb.decode_errors", self.stats.decode_errors);
        snap.push_counter(
            "stage.dataport.alarms",
            self.dataport.alarm_log().len() as u64,
        );
        for (cause, n) in self.ledger.cause_counts() {
            snap.push_counter(&format!("ledger.cause.{cause:?}"), n);
        }
        if let Some(a) = &self.admission {
            snap.push_counter("stage.bridge.admission_shed", a.shed_total());
            snap.push_counter("stage.bridge.admission_deferred", a.deferred_total());
            snap.push_gauge(
                "stage.bridge.admission_pending",
                self.admission_pending.len() as i64,
            );
        }
        snap.push_gauge("sim.queue.len", self.events.len() as i64);
        snap.push_gauge("sim.queue.high_water", self.events.high_water() as i64);
        if let Some(obs) = self.events.obs() {
            obs.publish(&mut snap);
        }
        snap
    }

    /// Canonical rendering of the scheduler's dispatch profile: queue
    /// depths, per-priority dispatch counts, the inter-event time
    /// histogram, and the dispatch trace when enabled. Byte-identical
    /// across replays of the same seed+plan.
    pub fn scheduling_profile(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "queue len={} high_water={}",
            self.events.len(),
            self.events.high_water()
        );
        if let Some(obs) = self.events.obs() {
            let _ = write!(out, "dispatch total={}", obs.dispatched());
            for (prio, n) in obs.dispatch_counts().iter().enumerate() {
                let _ = write!(out, " p{prio}={n}");
            }
            out.push('\n');
            let h = obs.inter_event();
            for (bound, n) in h.buckets() {
                let _ = writeln!(out, "inter_event le_{bound}={n}");
            }
            let _ = writeln!(
                out,
                "inter_event overflow={} count={} sum={}",
                h.overflow(),
                h.count(),
                h.sum()
            );
            // Bucket-resolution latency summary (nearest-rank; present
            // only once something was dispatched).
            if let (Some(p50), Some(p95), Some(p99)) =
                (h.percentile(500), h.percentile(950), h.percentile(990))
            {
                let _ = writeln!(out, "inter_event p50={p50} p95={p95} p99={p99}");
            }
            if let Some(trace) = obs.trace() {
                out.push_str(&trace.render());
            }
        }
        out
    }

    /// Advance the simulation until `end` by dispatching scheduled events
    /// in `(time, priority, seq)` order — no per-event scan over nodes, no
    /// polling. Exactly one transmission event per node is outstanding at
    /// any time; every accepted transmission schedules its own
    /// airtime-derived resolution deadline.
    pub fn run_until(&mut self, end: Timestamp) {
        // The calendar is taken out of `self` for the duration of the loop
        // and every handler receives it as an explicit follow-up sink —
        // the same protocol a fleet uses when this pipeline's events are
        // mounted in a sharded space, so solo and fleet dispatch run the
        // identical code path.
        let mut events = std::mem::take(&mut self.events);
        while let Some(key) = events.peek_key() {
            // Boundary rule: ticks and radio deadlines landing exactly on
            // `end` belong to this run (the lockstep loop drained both);
            // chaos transitions and transmissions at `end` belong to the
            // next. The same rule on both sides of a split point is what
            // makes `run_until(a); run_until(b)` ≡ `run_until(b)`.
            let within = key.time < end || (key.time == end && key.priority <= PRIO_RADIO);
            if !within {
                break;
            }
            let Some((key, event)) = events.pop() else {
                break;
            };
            let now = self.clock.advance(key.time);
            self.dispatch_event(now, event, &mut events);
        }
        self.events = events;
        self.finish_segment(end);
    }

    /// Dispatch one popped event at `now`, filing any follow-up events
    /// into `events`. This is the single dispatch body shared by the solo
    /// runner and fleet slice dispatch.
    pub(crate) fn dispatch_event(
        &mut self,
        now: Timestamp,
        event: SimEvent,
        events: &mut EventQueue<SimEvent>,
    ) {
        self.recorder.enter(now, event.label());
        match event {
            SimEvent::DataportTick => {
                self.dataport.tick(now);
                if let Some(next) = self.dataport.next_event(now) {
                    events.schedule(next, PRIO_TICK, SimEvent::DataportTick);
                }
            }
            SimEvent::RadioResolve => {
                self.radio.resolve_until(now);
                self.process_radio_outcomes(events);
            }
            SimEvent::ChaosTransition => self.apply_chaos(now),
            SimEvent::NodeTx(idx) => self.node_transmit(idx, now, events),
            SimEvent::StorageDrain => {
                self.drain_scheduled = false;
                self.pump_admission(now);
                self.consume_storage(events);
            }
        }
        self.recorder.exit(now, event.label());
    }

    /// End-of-segment settlement, shared by the solo runner and the fleet:
    /// windows still open whose deadlines lie beyond `end` can be resolved
    /// early iff no future submission can overlap them — the fleet's next
    /// transmission is that bound, so resolving up to it is exact (the
    /// full interferer set of everything resolved is already in flight).
    /// One O(N) pass per segment, not per event; the leftover deadline
    /// events become no-ops when they fire. Finally the clock advances to
    /// `end`.
    pub(crate) fn finish_segment(&mut self, end: Timestamp) {
        if let Some(next_tx) = self.nodes.iter().map(SensorNode::next_due).min() {
            self.radio.resolve_until(next_tx);
        }
        let mut events = std::mem::take(&mut self.events);
        self.process_radio_outcomes(&mut events);
        self.events = events;
        // Ingest flush barrier: the segment's writes are fully applied
        // before anything outside the segment (queries, fleet rollups,
        // replay comparisons) can observe the store.
        self.ingest.flush();
        self.clock.advance(end);
    }

    /// Detach every pending event in dispatch order, for mounting this
    /// pipeline's calendar into a fleet's sharded event space. The queue's
    /// seq counter and dispatch instrumentation stay live, so unmounting
    /// and remounting round-trips.
    pub(crate) fn unmount_events(&mut self) -> Vec<(EventKey, SimEvent)> {
        self.events.drain_ordered()
    }

    /// File one event back into the private calendar (the inverse of
    /// [`Pipeline::unmount_events`]; `seq` is reassigned, order is the
    /// caller's schedule order).
    pub(crate) fn remount_event(&mut self, time: Timestamp, priority: u8, event: SimEvent) {
        self.events.schedule(time, priority, event);
    }

    /// Dispatch one event popped from a fleet slice under its original
    /// key. Follow-ups land in the private calendar (empty at fleet-mode
    /// rest), to be drained by [`Pipeline::drain_followups`]; the key is
    /// recorded against the calendar's own instrumentation so the city
    /// keeps an accurate dispatch profile while mounted.
    pub(crate) fn dispatch_sliced(&mut self, key: EventKey, event: SimEvent) {
        let now = self.clock.advance(key.time);
        if let Some(obs) = self.events.obs_mut() {
            obs.record_dispatch(key, &event);
        }
        let mut events = std::mem::take(&mut self.events);
        self.dispatch_event(now, event, &mut events);
        self.events = events;
    }

    /// Follow-up events the last sliced dispatches filed, in dispatch
    /// order, for the fleet to route back into the owning shard.
    pub(crate) fn drain_followups(&mut self) -> Vec<(EventKey, SimEvent)> {
        self.events.drain_ordered()
    }

    /// Handle one node's transmission event at `now`: step the node,
    /// apply scenario overlays and inline chaos, submit to the radio, and
    /// reschedule the node at its new due time.
    fn node_transmit(&mut self, idx: usize, now: Timestamp, events: &mut EventQueue<SimEvent>) {
        let Some(node) = self.nodes.get_mut(idx) else {
            return;
        };
        let node_pos = node.site().position;
        if let Some(mut reading) = node.step(&self.emission, now) {
            reading = self.scenario.apply_reading(&reading, node_pos);
            self.stats.readings += 1;
            let device = reading.device;
            self.ledger.produced(device, now);
            if let Some(level) = self
                .chaos
                .as_ref()
                .and_then(|c| c.battery_override(device, now))
            {
                // Stuck telemetry only: the node's real battery (and
                // hence its transmit cadence) is untouched.
                reading.battery_pct = level;
            }
            let state = self.radio_state.entry(device).or_default();
            let mut frame =
                UplinkFrame::new(device, state.fcnt, 2, payload::encode(&reading).to_vec());
            let channel = usize::from(state.fcnt) % 3;
            state.fcnt = state.fcnt.wrapping_add(1);
            let sf = state.data_rate.spreading_factor();
            let tx_power_dbm = state.tx_power_dbm;
            let mut submit = true;
            if let Some(fault) = self.chaos.as_mut().and_then(|c| c.frame_fault(device, now)) {
                self.chaos_obs.frame_fault.inc();
                match Self::mutate_frame(&frame, fault) {
                    // The mangled frame still decodes (flip landed in
                    // padding, truncation kept a valid prefix): it
                    // travels on as-is.
                    Ok(mangled) => frame = mangled,
                    Err(cause) => {
                        // Gateway CRC check drops it; own the loss.
                        self.ledger.attribute(device, now, cause);
                        submit = false;
                    }
                }
            }
            if submit {
                let req = TxRequest {
                    device,
                    position: node_pos,
                    frame,
                    sf,
                    tx_power_dbm,
                    channel,
                };
                match self.radio.submit(now, req) {
                    Some(airtime) => {
                        // Schedule this window's resolution at its deadline:
                        // submissions land on whole seconds, so the window
                        // is certainly closed at ceil(now + airtime) — and
                        // always within the airtime-derived horizon.
                        let bound = collision_horizon().as_seconds();
                        let delay = (airtime.ceil() as i64).clamp(1, bound);
                        events.schedule(
                            now + Span::seconds(delay),
                            PRIO_RADIO,
                            SimEvent::RadioResolve,
                        );
                    }
                    None => {
                        // Duty-cycle refusal: the loss is known immediately
                        // (no window opens), so account for it now.
                        self.absorb_radio_losses();
                    }
                }
            }
        }
        // Reschedule the node at its post-step due time. `step` is the only
        // mutation of `next_due`, so exactly one event per node stays
        // outstanding.
        if let Some(node) = self.nodes.get(idx) {
            events.schedule(node.next_due(), PRIO_NODE, SimEvent::NodeTx(idx));
        }
    }

    /// Apply time-windowed chaos state at `now`: node death transitions
    /// and due TSDB bit flips. (Outage windows live in the radio simulator;
    /// per-frame and per-delivery faults are consulted inline.)
    fn apply_chaos(&mut self, now: Timestamp) {
        if self.chaos.is_none() {
            return;
        }
        // Bit flips target "the nth sealed chunk": drain the ingest lanes
        // so the chunk population at this instant matches a serial replay.
        self.ingest.flush();
        let flips = self
            .chaos
            .as_mut()
            .map(|c| c.due_bitflips(now))
            .unwrap_or_default();
        for (nth_chunk, bit) in flips {
            self.chaos_obs.bitflip.inc();
            match self.tsdb.flip_chunk_bit(nth_chunk, bit) {
                BitFlipOutcome::Quarantined { points } => {
                    // The integrity scan must later account for exactly these.
                    self.ledger.storage_quarantined(u64::from(points));
                }
                // Distinct non-destructive outcomes: an empty store, a chunk
                // whose bitstream had no bytes to flip, or a flip the codec
                // survived. None destroys data, so none enters the ledger.
                BitFlipOutcome::NoChunks
                | BitFlipOutcome::BitOutOfRange
                | BitFlipOutcome::StillReadable => {}
            }
        }
        let deaths: Vec<(DevEui, bool)> = self
            .chaos
            .as_ref()
            .map(|c| {
                c.death_devices()
                    .into_iter()
                    .map(|d| (d, c.death_active(d, now)))
                    .collect()
            })
            .unwrap_or_default();
        for (device, want_dead) in deaths {
            let applied = self.chaos_dead.get(&device).copied().unwrap_or(false);
            if want_dead == applied {
                continue;
            }
            if let Some(&idx) = self.node_index.get(&device) {
                if let Some(node) = self.nodes.get_mut(idx) {
                    node.set_health(if want_dead {
                        NodeHealth::Dead
                    } else {
                        NodeHealth::Healthy
                    });
                    self.chaos_dead.insert(device, want_dead);
                    self.chaos_obs.death_edge.inc();
                }
            }
        }
    }

    /// Apply an air-interface fault to an encoded frame. `Err(cause)` means
    /// the gateway's CRC check rejects the result — the uplink is lost and
    /// the cause is the attribution the ledger records.
    fn mutate_frame(frame: &UplinkFrame, fault: FrameFault) -> Result<UplinkFrame, CauseCode> {
        let mut bytes = frame.encode();
        let cause = match fault {
            FrameFault::CorruptBit { bit } => {
                if !bytes.is_empty() {
                    let b = bit % (bytes.len() as u64 * 8);
                    if let Some(byte) = bytes.get_mut((b / 8) as usize) {
                        *byte ^= 1 << (b % 8);
                    }
                }
                CauseCode::FrameCorrupted
            }
            FrameFault::Truncate { keep } => {
                let len = bytes.len().max(1) as u64;
                bytes.truncate((keep % len) as usize);
                CauseCode::FrameTruncated
            }
        };
        match UplinkFrame::decode(&bytes) {
            Ok(mangled) => Ok(mangled),
            Err(_) => Err(cause),
        }
    }

    /// Account for radio losses resolved so far: ledger attribution plus
    /// device-side link backoff (a real node that gets no downlink/ack for
    /// several uplinks falls back one data rate to regain range).
    fn absorb_radio_losses(&mut self) {
        let lost = self.radio.drain_lost();
        self.stats.radio_lost += lost.len() as u64;
        for l in &lost {
            self.ledger
                .attribute(l.device, l.time, CauseCode::from_loss(l.reason));
            let st = self.radio_state.entry(l.device).or_default();
            let sf = st.data_rate.spreading_factor();
            let new_sf = st.backoff.on_uplink(false, sf);
            st.data_rate = DataRate::from_sf(new_sf);
        }
    }

    /// Push every already-resolved radio outcome downstream: losses first
    /// (as the lockstep loop did), then deliveries through server → broker
    /// → storage → dataport.
    fn process_radio_outcomes(&mut self, events: &mut EventQueue<SimEvent>) {
        self.absorb_radio_losses();
        // Held-back uplinks go first when tokens allow: admission is FIFO
        // per gateway, so a deferred record is never overtaken by a newer
        // one from the same gateway.
        self.pump_admission(self.clock.now());
        let deliveries = self.radio.drain_resolved();
        for d in deliveries {
            self.stats.delivered += 1;
            {
                let dev = d.frame.dev_eui;
                let st = self.radio_state.entry(dev).or_default();
                let sf = st.data_rate.spreading_factor();
                st.backoff.on_uplink(true, sf);
            }
            let Some((record, adr)) = self.server.ingest(&d) else {
                self.ledger
                    .attribute(d.frame.dev_eui, d.time, CauseCode::ServerDuplicate);
                continue;
            };
            self.ledger.accepted(record.device, record.time);
            if let Some(cmd) = adr {
                let st = self.radio_state.entry(record.device).or_default();
                st.data_rate = cmd.data_rate;
                st.tx_power_dbm = cmd.tx_power_dbm;
                self.stats.adr_commands += 1;
            }
            self.publish_uplink(&record, events);
            if let Some(factor) = self
                .chaos
                .as_ref()
                .and_then(|c| c.traffic_spike_factor(record.time))
            {
                self.amplify_spike(&record, factor, events);
            }
        }
        self.consume_storage(events);
    }

    /// Traffic-spike amplification: for each real uplink delivered inside
    /// an active spike window, inject `factor - 1` synthetic uplinks from
    /// distinct synthetic devices through the normal publish path (the
    /// paper's "what if the whole city transmits at once"). Each synthetic
    /// uplink is a first-class ledger entry — produced, accepted, and then
    /// either stored or shed with an attributed cause — so conservation
    /// still balances under a ×100 burst.
    fn amplify_spike(&mut self, r: &UplinkRecord, factor: u32, events: &mut EventQueue<SimEvent>) {
        for _ in 1..factor {
            let device = self.spike_device(r.time);
            let mut synth = r.clone();
            synth.device = device;
            self.ledger.produced(device, synth.time);
            self.ledger.accepted(device, synth.time);
            self.publish_uplink(&synth, events);
        }
    }

    /// Allocate a synthetic spike device for an uplink at `time`: distinct
    /// within one instant (distinct `(device, time)` ledger keys), reused
    /// across instants (bounded twin/alarm population).
    fn spike_device(&mut self, time: Timestamp) -> DevEui {
        if self.spike_at != Some(time) {
            self.spike_at = Some(time);
            self.spike_seq = 0;
        }
        let device = DevEui::ctt(SPIKE_EUI_BASE + self.spike_seq);
        self.spike_seq = self.spike_seq.wrapping_add(1);
        device
    }

    /// Publish one uplink record to the broker in TTN shape, through the
    /// bridge admission controller when one is configured. Deferred records
    /// wait in `admission_pending` for a token; shed records are owned as
    /// `Lost(Backpressure)` and raise the dataport's backpressure alarm.
    fn publish_uplink(&mut self, r: &UplinkRecord, events: &mut EventQueue<SimEvent>) {
        let now = self.clock.now();
        if let Some(ctrl) = self.admission.as_mut() {
            match ctrl.admit(r.via_gateway, now) {
                Admission::Granted => {}
                Admission::Deferred => {
                    self.admission_pending.push_back(r.clone());
                    // A drain event doubles as the retry tick, so held
                    // records drain even if the radio goes quiet.
                    self.ensure_drain_scheduled(now, events);
                    return;
                }
                Admission::Shed => {
                    self.ledger
                        .attribute(r.device, r.time, CauseCode::Backpressure);
                    self.dataport.raise_alarm(
                        AlarmKind::Backpressure,
                        "bridge.admission",
                        now,
                        "uplink shed at bridge admission (token bucket dry)".to_string(),
                    );
                    return;
                }
            }
        }
        self.publish_to_broker(r);
    }

    /// Release admission-deferred records whose gateway has tokens again,
    /// in arrival order. No-op without an admission controller.
    fn pump_admission(&mut self, now: Timestamp) {
        if self.admission.is_none() || self.admission_pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.admission_pending);
        for rec in pending {
            let granted = self
                .admission
                .as_mut()
                .map(|a| a.retry(rec.via_gateway, now))
                .unwrap_or(false);
            if granted {
                self.publish_to_broker(&rec);
            } else {
                self.admission_pending.push_back(rec);
            }
        }
    }

    /// The admitted publish: broker delivery with bounded retry. A copy
    /// shed at the storage subscriber's in-flight cap is gone for good —
    /// only the storage subscription is ever capped, so `shed > 0` means
    /// the uplink will never be stored and the publisher owns the loss.
    fn publish_to_broker(&mut self, r: &UplinkRecord) {
        let event = UplinkEvent {
            city: self.city_slug.clone(),
            device: r.device,
            fcnt: r.fcnt,
            port: r.port,
            time: r.time,
            gateway: r.via_gateway,
            rssi_dbm: r.rssi_dbm,
            snr_db: r.snr_db,
            gateway_count: r.gateway_count,
            payload: r.payload.clone(),
        };
        // Bounded retry with exponential backoff: a full storage queue
        // defers QoS1 deliveries instead of losing them, and the bridge
        // gives up after the policy's attempts rather than spinning.
        let report = event.publish_with_retry(&self.broker, RetryPolicy::default());
        if report.shed > 0 {
            self.ledger
                .attribute(r.device, r.time, CauseCode::Backpressure);
            self.dataport.raise_alarm(
                AlarmKind::Backpressure,
                "broker.storage",
                self.clock.now(),
                "delivery shed at storage subscriber in-flight cap".to_string(),
            );
        }
    }

    /// The storage consumer: decode uplink events into TSDB points and feed
    /// the dataport twins. Each run is bounded to `drain_batch` deliveries;
    /// leftover backlog is worked off by scheduled [`SimEvent::StorageDrain`]
    /// events instead of one unbounded dispatch, so tick latency stays flat
    /// under overload. While a drain is scheduled, opportunistic runs stand
    /// down — all backlog work flows through the calendar, which is what
    /// keeps segmented `run_until` calls split-invariant.
    fn consume_storage(&mut self, events: &mut EventQueue<SimEvent>) {
        let now = self.clock.now();
        if self
            .chaos
            .as_ref()
            .map(|c| c.broker_stalled(now))
            .unwrap_or(false)
        {
            // Injected consumer stall: deliveries wait in the broker queue
            // (QoS1 keeps them in flight) until the window passes.
            // `broker_stall` edge-counts distinct windows; `stall_ticks`
            // tallies the raw skipped runs.
            if !self.stall_active {
                self.stall_active = true;
                self.chaos_obs.broker_stall.inc();
            }
            self.chaos_obs.stall_ticks.inc();
            // Keep a drain on the calendar so the backlog is picked up
            // when the window passes even if the radio goes quiet.
            self.ensure_drain_scheduled(now, events);
            return;
        }
        self.stall_active = false;
        if self.drain_scheduled {
            return;
        }
        self.recorder.enter(now, "storage");
        self.drain_storage(self.drain_batch);
        self.recorder.exit(now, "storage");
        self.ensure_drain_scheduled(now, events);
    }

    /// One bounded drain pass: up to `limit` deliveries through the
    /// exactly-once ack gate, decoded in parallel, applied serially.
    fn drain_storage(&mut self, limit: usize) {
        // Stage 1 (serial): drain the queue through the exactly-once
        // ack gate, in delivery order.
        let mut batch: Vec<Arc<Vec<u8>>> = Vec::new();
        while batch.len() < limit {
            let Some(delivery) = self.storage_sub.try_recv() else {
                break;
            };
            if let Some(pid) = delivery.packet_id {
                if !self.broker.ack(self.storage_sub.id, pid) {
                    // Already acked: a redelivered copy of an uplink
                    // this consumer has processed. Exactly-once gate.
                    continue;
                }
            }
            batch.push(Arc::clone(&delivery.message.payload));
        }
        // Stage 2 (parallel): decode on the worker pool. The pool's
        // id-ordered merge returns outcomes in delivery order, so the
        // serial apply below is byte-identical to the old inline loop.
        let decoded = self.decode_pool.map(batch);
        // Stage 3 (serial): ledger, twins, and one batched TSDB write.
        let mut points: Vec<DataPoint> = Vec::with_capacity(decoded.len() * 9);
        for outcome in decoded {
            match outcome {
                DecodeOutcome::BadEvent => {
                    self.stats.decode_errors += 1;
                }
                DecodeOutcome::BadPayload { device, time } => {
                    self.stats.decode_errors += 1;
                    self.ledger.attribute(device, time, CauseCode::DecodeError);
                }
                DecodeOutcome::Decoded(pair) => {
                    let (event, reading) = *pair;
                    let skew = self
                        .chaos
                        .as_ref()
                        .and_then(|c| c.clock_skew(event.device, event.time))
                        .unwrap_or(Span::seconds(0));
                    self.collect_points(&event, &reading, skew, &mut points);
                    self.ledger.stored(event.device, event.time);
                    self.dataport.on_uplink(
                        event.device,
                        event.time,
                        reading.battery_pct,
                        event.gateway,
                        Dbm(event.rssi_dbm),
                    );
                }
            }
        }
        self.stats.points_stored += self.ingest.submit(&points);
        // Queue headroom opened: pull back QoS1 deliveries deferred while
        // it was full. One round per pass — a scheduled drain picks up
        // whatever is still deferred.
        self.broker.redeliver_deferred();
    }

    /// Schedule a [`SimEvent::StorageDrain`] one logical second out if
    /// backlog remains anywhere — queued deliveries, deferred QoS1 copies,
    /// or admission-held records — and none is outstanding yet.
    fn ensure_drain_scheduled(&mut self, now: Timestamp, events: &mut EventQueue<SimEvent>) {
        if self.drain_scheduled {
            return;
        }
        if self.storage_sub.pending() > 0
            || self.broker.deferred_count() > 0
            || !self.admission_pending.is_empty()
        {
            events.schedule(now + Span::seconds(1), PRIO_DRAIN, SimEvent::StorageDrain);
            self.drain_scheduled = true;
        }
    }

    /// Turn one decoded uplink into its TSDB points, appended to the batch
    /// the storage stage writes with one `put_batch` call.
    fn collect_points(
        &self,
        event: &UplinkEvent,
        reading: &SensorReading,
        skew: Span,
        out: &mut Vec<DataPoint>,
    ) {
        // Clock skew perturbs only the stored timestamps — the twins (and
        // the ledger key) still see the uplink's transport time.
        let at = event.time + skew;
        let device_tag = format!("{:016x}", event.device.0);
        for q in Quantity::ALL {
            let point = DataPoint::new(
                q.metric_name(),
                vec![
                    ("city".to_string(), self.city_slug.clone()),
                    ("device".to_string(), device_tag.clone()),
                ],
                at,
                reading.value(q),
            );
            if let Ok(p) = point {
                out.push(p);
            }
        }
        // Link-quality metrics for the network dashboards.
        let rssi = DataPoint::new(
            "ctt.net.rssi",
            vec![
                ("city".to_string(), self.city_slug.clone()),
                ("device".to_string(), device_tag),
            ],
            at,
            event.rssi_dbm,
        );
        if let Ok(p) = rssi {
            out.push(p);
        }
    }

    /// Query one device's series for a quantity over `[from, to)` at the
    /// stored resolution.
    pub fn device_series(
        &self,
        device: DevEui,
        quantity: Quantity,
        from: Timestamp,
        to: Timestamp,
    ) -> Series {
        let q = Query::range(quantity.metric_name(), from, to)
            .with_tag("device", format!("{:016x}", device.0))
            .aggregate(Aggregator::Avg);
        self.ingest.flush();
        // Storage corruption degrades to an empty series here: dashboard
        // reads prefer availability, and the error is already typed at the
        // tsdb layer for callers that need it.
        self.tsdb
            .execute(&q)
            .unwrap_or_default()
            .into_iter()
            .next()
            .map(|r| r.series)
            .unwrap_or_default()
    }

    /// City-wide average series for a quantity.
    pub fn city_series(&self, quantity: Quantity, from: Timestamp, to: Timestamp) -> Series {
        let q = Query::range(quantity.metric_name(), from, to)
            .with_tag("city", self.city_slug.clone())
            .aggregate(Aggregator::Avg);
        self.ingest.flush();
        // Storage corruption degrades to an empty series here: dashboard
        // reads prefer availability, and the error is already typed at the
        // tsdb layer for callers that need it.
        self.tsdb
            .execute(&q)
            .unwrap_or_default()
            .into_iter()
            .next()
            .map(|r| r.series)
            .unwrap_or_default()
    }

    /// Ingest flush barrier: block until every submitted point has been
    /// applied by its shard's writer. After this the store is
    /// byte-identical to the same points having gone through
    /// `put_batch` in submit order.
    pub fn flush_ingest(&self) {
        self.ingest.flush();
    }

    /// Force one ingest shard's writer thread to die mid-batch (the
    /// `WriterCrash` chaos drill). The runtime respawns the writer at the
    /// next barrier and reapplies the in-flight batch exactly once.
    pub fn arm_writer_crash(&self, shard: usize) {
        self.ingest.arm_crash(shard);
    }

    /// Whether an ingest shard's writer thread is currently alive
    /// (crash-drill observability).
    pub fn ingest_writer_alive(&self, shard: usize) -> bool {
        self.ingest.writer_alive(shard)
    }

    /// The gateway ids of this pilot.
    pub fn gateway_ids(&self) -> Vec<GatewayId> {
        self.deployment.gateways.iter().map(|g| g.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctt_core::node::NodeHealth;
    use ctt_core::quantity::Pollutant;
    use ctt_dataport::AlarmKind;

    fn run_hours(hours: i64) -> Pipeline {
        let mut p = Pipeline::new(Deployment::vejle(), 42);
        let start = p.deployment.started;
        p.run_until(start + Span::hours(hours));
        p
    }

    #[test]
    fn data_flows_end_to_end() {
        let p = run_hours(2);
        let st = p.stats();
        // 2 nodes × 12 uplinks/hour × 2 h = 48 readings.
        assert_eq!(st.readings, 48);
        assert!(st.delivered > 40, "delivered {}", st.delivered);
        assert_eq!(st.decode_errors, 0);
        // 9 points per uplink (8 quantities + RSSI).
        assert_eq!(st.points_stored, st.delivered * 9);
        assert_eq!(p.tsdb.stats().points, st.points_stored);
        // Conservation holds even without chaos: every reading is stored
        // or attributed to a radio-level cause.
        let verdict = p.ledger().verify();
        assert!(verdict.is_balanced(), "{verdict:?}");
        assert_eq!(verdict.produced, st.readings);
        assert_eq!(verdict.stored, st.delivered);
    }

    #[test]
    fn tsdb_contains_queryable_series() {
        let p = run_hours(3);
        let start = p.deployment.started;
        let dev = p.deployment.nodes[0].eui;
        let co2 = p.device_series(
            dev,
            Quantity::Pollutant(Pollutant::Co2),
            start,
            start + Span::hours(3),
        );
        assert!(co2.len() > 25, "CO2 points {}", co2.len());
        assert!(co2.values().all(|v| (300.0..1500.0).contains(&v)));
        let city = p.city_series(Quantity::Temperature, start, start + Span::hours(3));
        assert!(!city.is_empty());
    }

    #[test]
    fn dataport_sees_all_devices_online() {
        let p = run_hours(2);
        let snap = p.dataport.snapshot(p.now());
        assert_eq!(snap.sensors.len(), 2);
        for s in &snap.sensors {
            assert_eq!(s.state, ctt_dataport::TwinState::Online, "{:?}", s.device);
            assert!(s.uplinks > 0);
            assert!(s.battery_pct.is_some());
        }
        assert_eq!(snap.gateways.len(), 1);
        assert!(snap.gateways[0].frames > 0);
    }

    #[test]
    fn dead_node_raises_offline_alarm() {
        let mut p = Pipeline::new(Deployment::vejle(), 42);
        let start = p.deployment.started;
        p.run_until(start + Span::hours(1));
        let victim = p.deployment.nodes[0].eui;
        p.nodes_mut()[0].set_health(NodeHealth::Dead);
        p.run_until(start + Span::hours(2));
        let alarms = p.dataport.active_alarms();
        assert!(
            alarms
                .iter()
                .any(|a| a.kind == AlarmKind::SensorOffline
                    && a.source.contains(&victim.to_string())),
            "no offline alarm for {victim}: {alarms:?}"
        );
        // The other node is unaffected.
        let snap = p.dataport.snapshot(p.now());
        let other = snap
            .sensors
            .iter()
            .find(|s| s.device != victim)
            .expect("two sensors");
        assert_eq!(other.state, ctt_dataport::TwinState::Online);
    }

    #[test]
    fn scenario_injection_shifts_stored_values() {
        use ctt_core::scenario::{Injection, ScenarioKind};
        let start = Deployment::vejle().started;
        let node_pos = Deployment::vejle().nodes[0].site.position;
        // Baseline run.
        let mut base = Pipeline::new(Deployment::vejle(), 42);
        base.run_until(start + Span::hours(2));
        // Run with a construction site on top of node 0.
        let mut injected = Pipeline::new(Deployment::vejle(), 42);
        let mut set = ScenarioSet::new();
        set.add(Injection {
            kind: ScenarioKind::ConstructionSite,
            center: node_pos,
            radius_m: 150.0,
            from: start,
            until: start + Span::days(30),
            intensity: 1.0,
        });
        injected.set_scenario(set);
        injected.run_until(start + Span::hours(2));
        let dev = base.deployment.nodes[0].eui;
        let range = (start, start + Span::hours(2));
        let q = Quantity::Pollutant(Pollutant::Pm10);
        let base_mean: f64 = {
            let s = base.device_series(dev, q, range.0, range.1);
            s.values().sum::<f64>() / s.len() as f64
        };
        let inj_mean: f64 = {
            let s = injected.device_series(dev, q, range.0, range.1);
            s.values().sum::<f64>() / s.len() as f64
        };
        assert!(
            inj_mean > base_mean + 40.0,
            "construction dust not visible: base {base_mean:.1}, injected {inj_mean:.1}"
        );
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let p = run_hours(1);
            (p.stats(), p.tsdb.stats().points)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trondheim_full_fleet() {
        let mut p = Pipeline::new(Deployment::trondheim(), 7);
        let start = p.deployment.started;
        p.run_until(start + Span::hours(1));
        let st = p.stats();
        // 12 nodes × 12 uplinks/hour = 144 readings (first uplinks are
        // phase-jittered inside the first interval, so ±12).
        assert!((132..=144).contains(&st.readings), "{st:?}");
        // Urban propagation loses some distant nodes' frames, but most flow.
        assert!(st.delivered as f64 > 0.7 * st.readings as f64, "{st:?}");
        let snap = p.dataport.snapshot(p.now());
        assert_eq!(snap.sensors.len(), 12);
    }
}
