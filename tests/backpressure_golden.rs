//! Healthy-run byte-identity pin for the backpressure work.
//!
//! The fixtures under `tests/goldens/` were captured on the tree *before*
//! scheduled storage drains, broker queue caps, and bridge admission control
//! existed. A healthy (chaos-free) run must keep producing byte-identical
//! observables: backpressure machinery may only change behaviour under
//! overload. Re-bless with `GOLDEN_BLESS=1 cargo test --test
//! backpressure_golden` only for a reviewed, intentional behaviour change.

use std::fs;
use std::path::PathBuf;

use ctt::prelude::*;

/// Everything the pin compares: ledger render, alarm trace, stage counters,
/// and TSDB point/series totals — the same observable set the run-split
/// determinism suite uses.
fn render_observables(p: &Pipeline) -> String {
    let st = p.tsdb.stats();
    format!(
        "== ledger ==\n{}== alarms ==\n{}== stats ==\n{:?}\n== tsdb ==\npoints={} series={}\n",
        p.ledger().render(),
        p.alarm_trace(),
        p.stats(),
        st.points,
        st.series,
    )
}

fn check_golden(name: &str, build: impl Fn() -> Pipeline, horizon: Span) {
    let mut p = build();
    let start = p.now();
    p.run_until(start + horizon);
    let got = render_observables(&p);

    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.push("tests/goldens");
    path.push(name);

    if std::env::var("GOLDEN_BLESS").is_ok() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir goldens");
        fs::write(&path, &got).expect("write golden");
        return;
    }

    let want = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with GOLDEN_BLESS=1", name));
    assert_eq!(
        got, want,
        "healthy-run observables diverged from the pre-backpressure golden {name}"
    );
}

#[test]
fn healthy_vejle_matches_pre_backpressure_golden() {
    check_golden(
        "healthy_vejle_seed42_6h.txt",
        || Pipeline::new(Deployment::vejle(), 42),
        Span::hours(6),
    );
}

#[test]
fn healthy_trondheim_matches_pre_backpressure_golden() {
    check_golden(
        "healthy_trondheim_seed5_3h.txt",
        || Pipeline::new(Deployment::trondheim(), 5),
        Span::hours(3),
    );
}
