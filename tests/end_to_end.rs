//! Cross-crate integration tests: the complete Fig. 1 data flow and the
//! paper's headline claims exercised end to end.

use ctt::analytics;
use ctt::prelude::*;
use ctt_core::deployment::CostModel;

#[test]
fn paper_deployment_facts_hold() {
    // §3: "two and twelve sensors were deployed respectively".
    let trondheim = Deployment::trondheim();
    let vejle = Deployment::vejle();
    assert_eq!(trondheim.nodes.len(), 12);
    assert_eq!(vejle.nodes.len(), 2);
    // §3: "collected since January 2017".
    assert_eq!(
        trondheim.started,
        Timestamp::from_civil(2017, 1, 1, 0, 0, 0)
    );
    // §1: 250 units for one station.
    assert_eq!(CostModel::default().units_per_station(), 250.0);
}

#[test]
fn five_minute_cadence_flows_to_storage() {
    let mut p = Pipeline::new(Deployment::vejle(), 1);
    let start = p.deployment.started;
    p.run_until(start + Span::hours(4));
    let dev = p.deployment.nodes[0].eui;
    let s = p.device_series(
        dev,
        Quantity::Pollutant(Pollutant::Co2),
        start,
        start + Span::hours(4),
    );
    // §3: five-minute interval → ~48 points in 4 hours (minus radio losses).
    assert!(s.len() >= 40, "{} points", s.len());
    let cadence = analytics::stats::mean_cadence(&s).expect("enough points");
    assert!(
        (cadence.as_seconds() - 300).abs() <= 40,
        "cadence {cadence}"
    );
}

#[test]
fn radio_losses_show_up_as_gaps_and_get_imputed() {
    let mut p = Pipeline::new(Deployment::trondheim(), 3);
    let start = p.deployment.started;
    let end = start + Span::hours(6);
    p.run_until(end);
    // The most distant node (Heimdal, 7.5 km) loses frames in urban
    // propagation; gaps are detected and imputation fills the grid.
    let heimdal = p
        .deployment
        .nodes
        .iter()
        .find(|n| n.name == "Heimdal")
        .expect("deployment has Heimdal")
        .eui;
    let s = p.device_series(heimdal, Quantity::Temperature, start, end);
    let completeness = analytics::completeness(&s, Span::minutes(5));
    if s.len() < 3 {
        // Entirely out of coverage is also an acceptable urban outcome;
        // nothing to impute then.
        return;
    }
    let gaps = analytics::find_gaps(&s, Span::minutes(5), 1.5);
    let (filled, imputed) =
        analytics::impute(&s, Span::minutes(5), analytics::ImputeMethod::Linear);
    if completeness < 0.999 {
        assert!(!gaps.is_empty() || imputed > 0 || s.len() < 72);
    }
    assert!(analytics::completeness(&filled, Span::minutes(5)) >= completeness);
}

#[test]
fn colocated_calibration_improves_absolute_accuracy() {
    use ctt::integration::{resample, NiluStation, ResampleMethod};
    use ctt_core::emission::Site;
    let mut p = Pipeline::new(Deployment::trondheim(), 5);
    let start = p.deployment.started;
    let end = start + Span::days(3);
    p.run_until(end);
    let station_spec = p
        .deployment
        .reference_station
        .clone()
        .expect("Trondheim has one");
    let station = NiluStation::new("Elgeseter", Site::kerbside(station_spec.position), 7);
    let reference = station.hourly_series(p.emission(), Pollutant::Co2, start, end);
    let colocated = station_spec.colocated_node.unwrap();
    let raw = p.device_series(colocated, Quantity::Pollutant(Pollutant::Co2), start, end);
    let hourly = resample(&raw, start, end, Span::hours(1), ResampleMethod::BucketMean);
    let report = analytics::calibrate_and_evaluate(&hourly, &reference, 0.5)
        .expect("3 days of co-location suffice");
    assert!(
        report.after.rmse <= report.before.rmse,
        "calibration must not worsen RMSE: {:?}",
        report
    );
    assert!(report.after.bias.abs() < report.before.bias.abs() + 1.0);
    // Relative accuracy (correlation) is high even before calibration —
    // the premise of the low-cost approach.
    assert!(report.before.r > 0.7, "raw correlation {}", report.before.r);
}

#[test]
fn fig5_verdict_holds_in_the_full_pipeline() {
    use ctt::integration::TrafficFeed;
    let mut p = Pipeline::new(Deployment::trondheim(), 11);
    let start = p.deployment.started + Span::days(0);
    let end = p.deployment.started + Span::days(5);
    p.run_until(end);
    let dev = p.deployment.nodes[2].eui; // urban background sensor
    let raw = p.device_series(dev, Quantity::Pollutant(Pollutant::Co2), start, end);
    // Node uplinks are phase-jittered; bring them onto the feed's 5-minute
    // grid before joining (the §2.2 harmonization step).
    let co2 = ctt::integration::resample(
        &raw,
        start,
        end,
        Span::minutes(5),
        ctt::integration::ResampleMethod::BucketMean,
    );
    let feed = TrafficFeed::new(p.deployment.traffic_model(11), 3);
    let jam = feed.series(start, end);
    let study = analytics::study(&co2, &jam, Span::minutes(5)).expect("enough data");
    assert!(
        study.pearson_r.abs() < 0.45,
        "CO2 vs jam factor should show weak/no correlation, got {}",
        study.pearson_r
    );
    assert_ne!(
        study.verdict,
        analytics::CorrelationVerdict::Strong,
        "paper's conclusion violated"
    );
}

#[test]
fn broker_consumers_see_live_uplinks() {
    use ctt::broker::{QoS, UplinkEvent};
    let mut p = Pipeline::new(Deployment::vejle(), 9);
    // A dashboard subscribes live, before the run.
    let dashboard = p
        .broker()
        .subscribe(UplinkEvent::city_filter("vejle"), QoS::AtMostOnce, 4096);
    let start = p.deployment.started;
    p.run_until(start + Span::hours(1));
    let events = dashboard.drain();
    assert!(!events.is_empty(), "dashboard got no live events");
    let decoded = UplinkEvent::decode(&events[0].message.payload).expect("valid event");
    assert_eq!(decoded.city, "vejle");
    // The payload decodes into a sensible reading.
    let reading = ctt_core::payload::decode(&decoded.payload, decoded.device, decoded.time)
        .expect("valid payload");
    assert!(reading.is_plausible());
}

#[test]
fn tsdb_compression_pays_off_on_pipeline_data() {
    let mut p = Pipeline::new(Deployment::vejle(), 13);
    let start = p.deployment.started;
    p.run_until(start + Span::days(2));
    let db = std::mem::take(&mut p.tsdb);
    db.seal_all();
    let st = db.stats();
    let raw_bytes = st.points as usize * 16;
    assert!(
        st.bytes * 2 < raw_bytes,
        "compression ratio too low: {} vs {raw_bytes}",
        st.bytes
    );
}

#[test]
fn gateway_outage_is_distinguished_from_node_failures() {
    use ctt_dataport::AlarmKind;
    // Vejle: one gateway, two single-homed sensors. Killing both sensors'
    // connectivity via the gateway should produce ONE gateway alarm.
    let mut p = Pipeline::new(Deployment::vejle(), 21);
    let start = p.deployment.started;
    p.run_until(start + Span::hours(1));
    // Simulate a gateway outage by killing both nodes (no frames at all =
    // the gateway twin also starves — exactly the ambiguity of §2.3).
    for n in p.nodes_mut() {
        n.set_health(ctt_core::node::NodeHealth::Dead);
    }
    p.run_until(start + Span::hours(3));
    let snap = p.dataport.snapshot(p.now());
    let gw_down = snap
        .active_alarms
        .iter()
        .filter(|a| a.kind == AlarmKind::GatewayOutage)
        .count();
    let sensors_offline = snap
        .active_alarms
        .iter()
        .filter(|a| a.kind == AlarmKind::SensorOffline)
        .count();
    assert_eq!(
        gw_down, 1,
        "gateway outage not detected: {:?}",
        snap.active_alarms
    );
    assert_eq!(
        sensors_offline, 0,
        "sensor alarms should be suppressed under the gateway outage"
    );
    assert_eq!(snap.suppressed_alarms, 2);
}

#[test]
fn citymodel_roundtrips_through_gml_with_overlay() {
    use ctt::citymodel::{generate_district, overlay, parse_gml, write_gml, PlacedSensor, P2};
    let model = generate_district("Vejle LOD1", Deployment::vejle().center, 6, 5);
    let restored = parse_gml(&write_gml(&model)).expect("own GML parses");
    assert_eq!(restored.buildings.len(), model.buildings.len());
    let reading = SensorReading::background(DevEui::ctt(101), Timestamp(0));
    let ov = overlay(
        &restored,
        vec![PlacedSensor {
            device: DevEui::ctt(101),
            position: P2::new(0.0, 0.0),
            reading,
        }],
    )
    .expect("one sensor suffices");
    assert_eq!(ov.buildings.len(), restored.buildings.len());
}

#[test]
fn table1_sources_all_produce_data() {
    use ctt::integration::*;
    use ctt_core::emission::Site;
    let d = Deployment::trondheim();
    let em = d.emission_model(42);
    let from = d.started;
    let to = from + Span::days(32);
    // Official air quality.
    let station = NiluStation::new("Elgeseter", Site::kerbside(d.center), 7);
    assert!(!station
        .hourly_series(&em, Pollutant::No2, from, to)
        .is_empty());
    // Remote sensing.
    let sat = Oco2::default();
    assert!(!sat.collect(&em, d.center, from, to).is_empty());
    // Commercial traffic.
    let feed = TrafficFeed::new(d.traffic_model(42), 1);
    assert!(!feed.series(from, to).is_empty());
    // Municipal counts.
    let campaign = CountingCampaign {
        start: from,
        days: 7,
    };
    assert_eq!(campaign.daily_counts(feed.model()).len(), 7);
    // National statistics.
    let inv = NationalInventory::new(0.035);
    assert_eq!(inv.downscale(2017).len(), 5);
    // 3D city model (Table 1 row 5) and municipal tools are exercised in
    // the citymodel test above; the metadata table itself:
    assert_eq!(SourceKind::ALL.len(), 7);
}
