//! Byte-identity of the sharded event space: dispatching a multi-city
//! fleet through [`Fleet`]'s parallel in-slice path must be bit-for-bit
//! equal to sequential single-queue dispatch — ledger, alarm trace,
//! metrics snapshot (CSV and JSON), and TSDB contents — at 1, 2, and 8
//! shards, over random workloads *including chaos faults*. Plus run-split
//! invariance through the sharded path: pausing a fleet at any instant
//! and resuming must replay identically.

use ctt::fleet::{Fleet, FleetConfig};
use ctt::prelude::*;
use ctt_chaos::{FaultKind, FaultPlan};
use proptest::prelude::*;

/// Everything the determinism suite compares per city: ledger render,
/// alarm trace, counters, TSDB totals, and the full metrics snapshot in
/// both export formats.
fn observables(p: &Pipeline) -> (String, String, PipelineStats, u64, usize, String, String) {
    let st = p.tsdb.stats();
    let snap = p.metrics_snapshot();
    (
        p.ledger().render(),
        p.alarm_trace(),
        p.stats(),
        st.points,
        st.series,
        snap.to_csv(),
        snap.to_json(),
    )
}

/// The split-invariance observable set, mirroring `tests/run_split.rs`:
/// outcome state only. Work-attempt counters (e.g. `broker.stall_ticks`)
/// legitimately differ across splits — a segment boundary inside a stall
/// window makes one extra (idle) consumer attempt — so the full metrics
/// snapshot is compared only between equal-schedule runs.
fn split_observables(p: &Pipeline) -> (String, String, PipelineStats, u64, usize) {
    let st = p.tsdb.stats();
    (
        p.ledger().render(),
        p.alarm_trace(),
        p.stats(),
        st.points,
        st.series,
    )
}

/// One generated fault, positioned in minutes past the deployment start.
#[derive(Debug, Clone)]
enum FaultSpec {
    Death {
        node: u8,
        from_min: i64,
        len_min: i64,
    },
    Outage {
        from_min: i64,
        len_min: i64,
    },
    Corrupt {
        node: u8,
        from_min: i64,
        len_min: i64,
    },
    Stall {
        from_min: i64,
        len_min: i64,
    },
    BitFlip {
        nth: u64,
        bit: u64,
        at_min: i64,
    },
}

fn build_plan(d: &Deployment, faults: &[FaultSpec]) -> FaultPlan {
    let t0 = d.started;
    let mut plan = FaultPlan::new();
    for f in faults {
        plan = match *f {
            FaultSpec::Death {
                node,
                from_min,
                len_min,
            } => plan.with(
                FaultKind::NodeDeath {
                    device: d.nodes[usize::from(node) % d.nodes.len()].eui,
                },
                t0 + Span::minutes(from_min),
                t0 + Span::minutes(from_min + len_min),
            ),
            FaultSpec::Outage { from_min, len_min } => plan.with(
                FaultKind::GatewayOutage {
                    gateway: d.gateways[0].id,
                },
                t0 + Span::minutes(from_min),
                t0 + Span::minutes(from_min + len_min),
            ),
            FaultSpec::Corrupt {
                node,
                from_min,
                len_min,
            } => plan.with(
                FaultKind::FrameCorruption {
                    device: d.nodes[usize::from(node) % d.nodes.len()].eui,
                },
                t0 + Span::minutes(from_min),
                t0 + Span::minutes(from_min + len_min),
            ),
            FaultSpec::Stall { from_min, len_min } => plan.with(
                FaultKind::BrokerStall,
                t0 + Span::minutes(from_min),
                t0 + Span::minutes(from_min + len_min),
            ),
            FaultSpec::BitFlip { nth, bit, at_min } => plan.at(
                FaultKind::TsdbBitFlip {
                    nth_chunk: nth,
                    bit,
                },
                t0 + Span::minutes(at_min),
            ),
        };
    }
    plan
}

fn fault_strategy() -> impl Strategy<Value = FaultSpec> {
    prop_oneof![
        (0u8..4, 5i64..70, 10i64..50).prop_map(|(node, from_min, len_min)| FaultSpec::Death {
            node,
            from_min,
            len_min
        }),
        (5i64..70, 5i64..40)
            .prop_map(|(from_min, len_min)| FaultSpec::Outage { from_min, len_min }),
        (0u8..4, 5i64..70, 10i64..50).prop_map(|(node, from_min, len_min)| FaultSpec::Corrupt {
            node,
            from_min,
            len_min
        }),
        (5i64..70, 5i64..25).prop_map(|(from_min, len_min)| FaultSpec::Stall { from_min, len_min }),
        (0u64..8, 0u64..100_000, 30i64..80).prop_map(|(nth, bit, at_min)| FaultSpec::BitFlip {
            nth,
            bit,
            at_min
        }),
    ]
}

fn city_strategy() -> impl Strategy<Value = (u64, Vec<FaultSpec>)> {
    (
        0u64..10_000,
        proptest::collection::vec(fault_strategy(), 0..3),
    )
}

/// Build the fleet's pipelines for one case. Cities are renamed so they
/// spread over shards by slug hash (two pipelines of the same slug
/// sharing a shard is covered by `four_city_fleet_parallel_equals_sequential`).
fn build_cities(specs: &[(u64, Vec<FaultSpec>)]) -> Vec<Pipeline> {
    specs
        .iter()
        .enumerate()
        .map(|(i, (seed, faults))| {
            let mut d = Deployment::vejle();
            d.city = format!("City{i}");
            let plan = build_plan(&d, faults);
            Pipeline::with_chaos(d, *seed, plan)
        })
        .collect()
}

fn run_fleet(pipelines: Vec<Pipeline>, shards: usize, parallel: bool, end: Timestamp) -> Fleet {
    let mut fleet = Fleet::with_config(
        pipelines,
        FleetConfig {
            shards,
            parallel,
            ..FleetConfig::default()
        },
    );
    fleet.run_until(end);
    fleet
}

proptest! {
    /// Random multi-city workloads with chaos: parallel slice dispatch at
    /// 1, 2, and 8 shards must match sequential single-queue dispatch
    /// byte for byte on every per-city observable.
    #[test]
    fn sharded_parallel_matches_sequential_single_queue(
        specs in proptest::collection::vec(city_strategy(), 1..4),
        horizon_min in 45i64..110,
    ) {
        let end = Deployment::vejle().started + Span::minutes(horizon_min);
        let reference = run_fleet(build_cities(&specs), 1, false, end);
        let ref_obs: Vec<_> = reference.into_pipelines().iter().map(observables).collect();
        for shards in [1usize, 2, 8] {
            let fleet = run_fleet(build_cities(&specs), shards, true, end);
            let got: Vec<_> = fleet.into_pipelines().iter().map(observables).collect();
            prop_assert_eq!(&got, &ref_obs, "shards={} diverged from sequential", shards);
        }
    }

    /// Run-split invariance through the sharded path: a fleet paused and
    /// resumed at a random split replays the one-shot run exactly.
    #[test]
    fn fleet_run_split_is_invariant(
        specs in proptest::collection::vec(city_strategy(), 1..3),
        split_s in (20i64 * 60)..(70 * 60),
        horizon_min in 80i64..110,
    ) {
        let start = Deployment::vejle().started;
        let end = start + Span::minutes(horizon_min);
        let oneshot = run_fleet(build_cities(&specs), 4, true, end);
        let mut segmented = run_fleet(build_cities(&specs), 4, true, start + Span::seconds(split_s));
        segmented.run_until(end);
        prop_assert_eq!(segmented.now(), oneshot.now());
        let a: Vec<_> = oneshot.cities().map(split_observables).collect();
        let b: Vec<_> = segmented.cities().map(split_observables).collect();
        prop_assert_eq!(&b, &a, "split at {}s diverged from one-shot", split_s);
        // Per-shard dispatch totals agree (the same events flowed through
        // the same shards). Slice *counts* may legitimately differ: a
        // split landing exactly on a populated instant cuts that instant
        // into two slices without reordering any dispatch.
        prop_assert_eq!(
            segmented.metrics_snapshot().value("sim.shard0.dispatched"),
            oneshot.metrics_snapshot().value("sim.shard0.dispatched")
        );
    }
}

/// The acceptance-criterion case, pinned deterministically: a 4-city fleet
/// (two pilots plus two renamed vejles, all with fault plans, two cities
/// hashing onto the same shard) dispatched in parallel equals sequential
/// single-queue dispatch bit for bit — and at equal shard counts even the
/// fleet-level snapshot and scheduling profile agree.
#[test]
fn four_city_fleet_parallel_equals_sequential() {
    let build = || {
        let mut cities = vec![
            Pipeline::new(Deployment::vejle(), 7),
            Pipeline::new(Deployment::trondheim(), 7),
        ];
        for (i, seed) in [(2usize, 99u64), (3, 1234)] {
            let mut d = Deployment::vejle();
            d.city = format!("Pilot{i}");
            let plan = build_plan(
                &d,
                &[
                    FaultSpec::Death {
                        node: 0,
                        from_min: 40,
                        len_min: 60,
                    },
                    FaultSpec::Outage {
                        from_min: 90,
                        len_min: 30,
                    },
                    FaultSpec::BitFlip {
                        nth: 2,
                        bit: 9_173,
                        at_min: 150,
                    },
                ],
            );
            cities.push(Pipeline::with_chaos(d, seed, plan));
        }
        cities
    };
    let end = Deployment::vejle().started + Span::hours(4);
    let sequential = run_fleet(build(), 4, false, end);
    let parallel = run_fleet(build(), 4, true, end);
    // Equal shard count: fleet-level exports are byte-identical.
    assert_eq!(
        parallel.metrics_snapshot().to_csv(),
        sequential.metrics_snapshot().to_csv()
    );
    assert_eq!(
        parallel.metrics_snapshot().to_json(),
        sequential.metrics_snapshot().to_json()
    );
    assert_eq!(
        parallel.scheduling_profile(),
        sequential.scheduling_profile()
    );
    // Slices actually fanned out over multiple shards.
    let snap = parallel.metrics_snapshot();
    let active = (0..4)
        .filter(|i| snap.value(&format!("sim.shard{i}.dispatched")).unwrap_or(0) > 0)
        .count();
    assert!(active >= 2, "fleet never spread over shards:\n{snap:?}");
    // And against the single-queue reference, every per-city observable.
    let reference = run_fleet(build(), 1, false, end);
    let ref_obs: Vec<_> = reference.into_pipelines().iter().map(observables).collect();
    let got: Vec<_> = parallel.into_pipelines().iter().map(observables).collect();
    assert_eq!(got, ref_obs);
}
