//! Observability must be replay-deterministic: two runs of the same
//! seed+plan produce byte-identical metrics snapshots (CSV and JSON) and
//! byte-identical scheduling profiles, with the dispatch trace enabled.
//! This pins the ctt-obs acceptance criterion — instrumentation that
//! perturbed replay, or exports that depended on iteration order, wall
//! clock, or float formatting, would diverge here.

use ctt::prelude::*;

/// Run a two-city fleet and capture the fleet-level exports.
fn fleet_run(shards: usize) -> (String, String, String) {
    let mut fleet = Fleet::with_config(
        vec![
            Pipeline::new(Deployment::vejle(), 42),
            Pipeline::new(Deployment::trondheim(), 7),
        ],
        FleetConfig {
            shards,
            parallel: true,
            ..FleetConfig::default()
        },
    );
    let end = Deployment::vejle().started + Span::hours(6);
    fleet.run_until(end);
    let snap = fleet.metrics_snapshot();
    (snap.to_csv(), snap.to_json(), fleet.scheduling_profile())
}

/// Run one city with full instrumentation and capture every export.
fn instrumented_run(deployment: Deployment, seed: u64, hours: i64) -> (String, String, String) {
    let mut p = Pipeline::new(deployment, seed);
    p.enable_dispatch_trace(64);
    let start = p.deployment.started;
    p.run_until(start + Span::hours(hours));
    let snap = p.metrics_snapshot();
    (snap.to_csv(), snap.to_json(), p.scheduling_profile())
}

#[test]
fn two_city_profile_is_byte_identical_across_replays() {
    for (deployment, seed) in [
        (Deployment::vejle as fn() -> Deployment, 42u64),
        (Deployment::trondheim as fn() -> Deployment, 7u64),
    ] {
        let (csv_a, json_a, prof_a) = instrumented_run(deployment(), seed, 6);
        let (csv_b, json_b, prof_b) = instrumented_run(deployment(), seed, 6);
        assert_eq!(csv_a, csv_b, "metrics CSV diverged across replays");
        assert_eq!(json_a, json_b, "metrics JSON diverged across replays");
        assert_eq!(prof_a, prof_b, "scheduling profile diverged across replays");
        // The exports are substantive, not vacuously equal.
        assert!(csv_a.lines().count() > 20, "thin snapshot:\n{csv_a}");
        assert!(prof_a.contains("dispatch total="), "{prof_a}");
        assert!(prof_a.contains("trace kept=64"), "trace missing:\n{prof_a}");
    }
}

#[test]
fn snapshot_agrees_with_pipeline_stats() {
    let mut p = Pipeline::new(Deployment::vejle(), 42);
    let start = p.deployment.started;
    p.run_until(start + Span::hours(2));
    let snap = p.metrics_snapshot();
    let st = p.stats();
    assert_eq!(
        snap.value("stage.node.readings"),
        Some(i128::from(st.readings))
    );
    assert_eq!(
        snap.value("stage.radio.delivered"),
        Some(i128::from(st.delivered))
    );
    assert_eq!(
        snap.value("stage.tsdb.points_stored"),
        Some(i128::from(st.points_stored))
    );
    // The storage subscriber's registry-backed counter saw every delivery.
    assert_eq!(
        snap.value("broker.sub0.delivered"),
        Some(i128::from(p.broker().stats().delivered))
    );
    // Shard put counters sum to the points stored.
    let shard_puts: i128 = (0..p.tsdb.shard_count())
        .map(|i| snap.value(&format!("tsdb.shard{i}.puts")).unwrap_or(0))
        .sum();
    assert_eq!(shard_puts, i128::from(st.points_stored));
    // The dispatch profile accounts for every priority class in use.
    assert!(snap.value("sim.dispatch.total").unwrap_or(0) > 0);
    assert!(snap.value("sim.queue.high_water").unwrap_or(0) > 0);
    // Snapshot time is the simulation clock, not the wall clock.
    assert_eq!(snap.at(), p.now());
}

#[test]
fn fleet_profile_is_byte_identical_across_replays_and_pins_shard_metrics() {
    let (csv_a, json_a, prof_a) = fleet_run(4);
    let (csv_b, json_b, prof_b) = fleet_run(4);
    assert_eq!(csv_a, csv_b, "fleet metrics CSV diverged across replays");
    assert_eq!(json_a, json_b, "fleet metrics JSON diverged across replays");
    assert_eq!(prof_a, prof_b, "fleet profile diverged across replays");
    // The sharded event space's names are pinned in the fleet snapshot:
    // per-shard dispatch counters, the cross lane, and the slice-width
    // histogram all export under sim.*.
    for name in [
        "sim.shard0.dispatched",
        "sim.shard3.dispatched",
        "sim.cross_shard_events",
        "sim.slices",
        "sim.slice_width",
        "sim.space.len",
        "fleet.cities",
    ] {
        assert!(
            csv_a.contains(name),
            "{name} missing from fleet CSV:\n{csv_a}"
        );
    }
    assert!(prof_a.contains("space shards=4"), "{prof_a}");
    assert!(prof_a.contains("slice_width.p50="), "{prof_a}");
    // Per-city dispatch accounting flows into the fleet snapshot via the
    // cities' own registries; something actually dispatched per shard.
    let snap_total: i128 = {
        let mut fleet = Fleet::with_config(
            vec![
                Pipeline::new(Deployment::vejle(), 42),
                Pipeline::new(Deployment::trondheim(), 7),
            ],
            FleetConfig {
                shards: 4,
                parallel: true,
                ..FleetConfig::default()
            },
        );
        fleet.run_until(Deployment::vejle().started + Span::hours(6));
        let snap = fleet.metrics_snapshot();
        (0..4)
            .map(|i| snap.value(&format!("sim.shard{i}.dispatched")).unwrap_or(0))
            .sum()
    };
    assert!(snap_total > 0, "no shard dispatched anything");
}

#[test]
fn instrumentation_does_not_perturb_replay_observables() {
    // A run with tracing enabled must produce the same pipeline
    // observables as a run without: obs is read-only on the data path.
    let run = |trace: bool| {
        let mut p = Pipeline::new(Deployment::trondheim(), 7);
        if trace {
            p.enable_dispatch_trace(128);
        }
        let start = p.deployment.started;
        p.run_until(start + Span::hours(4));
        (p.ledger().render(), p.alarm_trace(), p.stats())
    };
    assert_eq!(run(false), run(true));
}
