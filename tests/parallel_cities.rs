//! Parallel execution must not perturb replay: advancing independent city
//! pipelines on worker threads via [`ctt::run_cities_parallel`] has to
//! produce byte-identical observables (ledger, alarm trace, stats, TSDB
//! contents) to advancing the same pipelines sequentially.

use ctt::prelude::*;
use ctt::run_cities_parallel;

fn observables(p: &Pipeline) -> (String, String, PipelineStats, u64, usize) {
    let st = p.tsdb.stats();
    (
        p.ledger().render(),
        p.alarm_trace(),
        p.stats(),
        st.points,
        st.series,
    )
}

#[test]
fn parallel_city_runs_match_sequential_byte_for_byte() {
    let horizon = Span::hours(6);
    let builds = || {
        vec![
            Pipeline::new(Deployment::vejle(), 7),
            Pipeline::new(Deployment::trondheim(), 7),
            Pipeline::new(Deployment::vejle(), 99),
        ]
    };

    // Sequential reference.
    let mut sequential = builds();
    for p in &mut sequential {
        let end = p.deployment.started + horizon;
        p.run_until(end);
    }

    // Parallel run of identically-seeded pipelines.
    let parallel = run_cities_parallel(builds(), horizon);

    assert_eq!(parallel.len(), sequential.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(
            observables(s),
            observables(p),
            "parallel run diverged from sequential for {}",
            s.deployment.city
        );
    }
}

#[test]
fn parallel_runs_are_deterministic_across_invocations() {
    let horizon = Span::hours(4);
    let run = || {
        let ps = run_cities_parallel(
            vec![
                Pipeline::new(Deployment::vejle(), 3),
                Pipeline::new(Deployment::trondheim(), 5),
            ],
            horizon,
        );
        ps.iter().map(observables).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
