//! Cross-crate agreement: `ctt-tsdb`'s percentile aggregators and
//! `ctt-analytics`' `quantile` must compute the *same* statistic (linear
//! interpolation between closest ranks), so a P95 shown on a dashboard
//! queried from the TSDB matches the P95 computed by the analytics layer
//! over the same values — bit for bit, not merely approximately.

use ctt_analytics::stats::{median, quantile};
use ctt_tsdb::Aggregator;
use proptest::prelude::*;

proptest! {
    /// P95/Median agree exactly with quantile(0.95/0.5) on arbitrary
    /// finite inputs.
    #[test]
    fn tsdb_percentiles_match_analytics_quantile(
        values in proptest::collection::vec(-1e9f64..1e9, 1..200),
    ) {
        let p95 = Aggregator::P95.apply(&values);
        let med = Aggregator::Median.apply(&values);
        prop_assert_eq!(Some(p95), quantile(&values, 0.95));
        prop_assert_eq!(Some(med), quantile(&values, 0.5));
        prop_assert_eq!(Some(med), median(&values));
    }
}

#[test]
fn known_values_interpolate_not_nearest_rank() {
    // Four values: P95 sits between the 3rd and 4th order statistics.
    // Nearest-rank would return 4.0; linear interpolation gives 3.85.
    let xs = [1.0, 2.0, 3.0, 4.0];
    assert!((Aggregator::P95.apply(&xs) - 3.85).abs() < 1e-12);
    assert_eq!(Aggregator::P95.apply(&xs), quantile(&xs, 0.95).unwrap());
    // Even-length median interpolates halfway.
    assert_eq!(Aggregator::Median.apply(&xs), 2.5);
    assert_eq!(median(&xs).unwrap(), 2.5);
}

#[test]
fn empty_input_conventions_are_explicit() {
    // The layers differ deliberately on empties: analytics returns None,
    // the TSDB aggregator returns NaN (a query row must hold *some* f64).
    assert_eq!(quantile(&[], 0.95), None);
    assert!(Aggregator::P95.apply(&[]).is_nan());
}
