//! Property-based tests over the core data structures and codecs.

use ctt::prelude::*;
use ctt_broker::{Topic, TopicFilter};
use ctt_core::payload;
use ctt_core::time::Span as CSpan;
use ctt_lorawan::UplinkFrame;
use ctt_tsdb::GorillaEncoder;
use proptest::prelude::*;

proptest! {
    /// Civil-calendar conversion roundtrips for any representable instant
    /// within ±10000 years.
    #[test]
    fn timestamp_civil_roundtrip(secs in -300_000_000_000i64..300_000_000_000i64) {
        let t = Timestamp(secs);
        let c = t.civil();
        prop_assert_eq!(c.timestamp(), t);
        prop_assert!((1..=12).contains(&c.month));
        prop_assert!((1..=31).contains(&c.day));
    }

    /// Alignment is idempotent, ordered, and within one interval.
    #[test]
    fn align_invariants(secs in -1_000_000_000i64..1_000_000_000i64, step in 1i64..100_000) {
        let t = Timestamp(secs);
        let s = CSpan::seconds(step);
        let down = t.align_down(s);
        let up = t.align_up(s);
        prop_assert!(down <= t && t <= up);
        prop_assert!((t - down).as_seconds() < step);
        prop_assert!((up - t).as_seconds() < step);
        prop_assert_eq!(down.align_down(s), down);
        prop_assert_eq!(up.align_up(s), up);
    }

    /// The 18-byte payload codec roundtrips any in-range reading within
    /// quantization error.
    #[test]
    fn payload_roundtrip(
        co2 in 0.0..6000.0f64,
        no2 in 0.0..6000.0f64,
        pm25 in 0.0..6000.0f64,
        pm10 in 0.0..6000.0f64,
        temp in -300.0..300.0f64,
        press in 510.0..7000.0f64,
        rh in 0.0..127.0f64,
        batt in 0.0..100.0f64,
    ) {
        let r = SensorReading {
            device: DevEui::ctt(1),
            time: Timestamp(0),
            co2_ppm: co2,
            no2_ppb: no2,
            pm25_ug_m3: pm25,
            pm10_ug_m3: pm10,
            temperature_c: temp,
            pressure_hpa: press,
            humidity_pct: rh,
            battery_pct: batt,
        };
        let dec = payload::decode(&payload::encode(&r), r.device, r.time).unwrap();
        prop_assert!((dec.co2_ppm - co2).abs() <= 0.05 + 1e-9);
        prop_assert!((dec.temperature_c - temp).abs() <= 0.005 + 1e-9);
        prop_assert!((dec.pressure_hpa - press).abs() <= 0.05 + 1e-9);
        prop_assert!((dec.humidity_pct - rh).abs() <= 0.25 + 1e-9);
        prop_assert!((dec.battery_pct - batt).abs() <= 0.25 + 1e-9);
    }

    /// Any single-byte corruption of a payload is detected by the CRC.
    #[test]
    fn payload_corruption_detected(idx in 0usize..18, flip in 1u8..=255) {
        let r = SensorReading::background(DevEui::ctt(2), Timestamp(1000));
        let mut bytes = payload::encode(&r);
        bytes[idx] ^= flip;
        // The final pad byte is not covered by the CRC; corruption there is
        // harmless by construction.
        if idx != 17 {
            prop_assert!(payload::decode(&bytes, r.device, r.time).is_err());
        }
    }

    /// LoRaWAN frames roundtrip any payload and reject any corruption.
    #[test]
    fn frame_roundtrip(dev in any::<u64>(), fcnt in any::<u16>(), port in any::<u8>(),
                       body in proptest::collection::vec(any::<u8>(), 0..64)) {
        let f = UplinkFrame::new(DevEui(dev), fcnt, port, body);
        let bytes = f.encode();
        prop_assert_eq!(UplinkFrame::decode(&bytes).unwrap(), f);
    }

    /// Gorilla compression is lossless for sorted timestamp/value streams.
    #[test]
    fn gorilla_lossless(
        mut deltas in proptest::collection::vec(0i64..100_000, 1..200),
        values in proptest::collection::vec(-1e12f64..1e12, 1..200),
    ) {
        let n = deltas.len().min(values.len());
        deltas.truncate(n);
        let mut enc = GorillaEncoder::new();
        let mut t = 1_483_228_800i64;
        let mut pts = Vec::new();
        for (d, v) in deltas.iter().zip(&values) {
            t += d;
            enc.append(Timestamp(t), *v);
            pts.push((Timestamp(t), *v));
        }
        let decoded = enc.finish().decode();
        prop_assert_eq!(decoded, Ok(pts));
    }

    /// Topic filters: `#` matches everything under the prefix; an exact
    /// filter matches exactly itself.
    #[test]
    fn topic_matching_invariants(levels in proptest::collection::vec("[a-z0-9]{1,6}", 1..6)) {
        let name = levels.join("/");
        let topic = Topic::new(name.clone()).unwrap();
        // Exact filter matches.
        prop_assert!(TopicFilter::new(name.clone()).unwrap().matches(&topic));
        // Global wildcard matches.
        prop_assert!(TopicFilter::new("#").unwrap().matches(&topic));
        // Prefix + /# matches.
        if levels.len() > 1 {
            let prefix = levels[..levels.len() - 1].join("/");
            let sub = format!("{prefix}/#");
            prop_assert!(TopicFilter::new(sub).unwrap().matches(&topic));
            // Replacing any level with + still matches.
            for i in 0..levels.len() {
                let mut l2 = levels.clone();
                l2[i] = "+".to_string();
                prop_assert!(TopicFilter::new(l2.join("/")).unwrap().matches(&topic));
            }
        }
        // A different final level does not match.
        let mut other = levels.clone();
        let last = other.last_mut().unwrap();
        last.push('x');
        prop_assert!(!TopicFilter::new(other.join("/")).unwrap().matches(&topic));
    }

    /// CAQI sub-indices are monotone and non-negative for every pollutant.
    #[test]
    fn caqi_monotone(c1 in 0.0..2000.0f64, c2 in 0.0..2000.0f64) {
        use ctt_core::aqi::sub_index;
        for p in [Pollutant::No2, Pollutant::Pm10, Pollutant::Pm25] {
            let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
            let i_lo = sub_index(p, lo).unwrap();
            let i_hi = sub_index(p, hi).unwrap();
            prop_assert!(i_lo >= 0.0);
            prop_assert!(i_lo <= i_hi + 1e-9, "{:?}: {} > {}", p, i_lo, i_hi);
        }
    }

    /// LoRa airtime is positive, monotone in payload length, and monotone
    /// in spreading factor.
    #[test]
    fn airtime_monotonicity(len in 0usize..200) {
        use ctt_lorawan::{time_on_air_s, AirtimeParams, SpreadingFactor};
        let mut prev_sf = 0.0;
        for sf in SpreadingFactor::ALL {
            let t = time_on_air_s(&AirtimeParams::lorawan_uplink(sf, len));
            prop_assert!(t > 0.0);
            prop_assert!(t > prev_sf, "{sf} not slower than previous");
            prev_sf = t;
            let t_longer = time_on_air_s(&AirtimeParams::lorawan_uplink(sf, len + 16));
            prop_assert!(t_longer >= t);
        }
    }

    /// Resampling never invents points outside the requested window and
    /// output is strictly time-ordered.
    #[test]
    fn resample_window_bounds(
        pts in proptest::collection::vec((0i64..100_000, -100.0..100.0f64), 0..50),
        start in 0i64..50_000,
        len in 1i64..50_000,
        step in 10i64..5_000,
    ) {
        use ctt::integration::{resample, ResampleMethod};
        let series = Series::from_points(
            pts.into_iter().map(|(t, v)| (Timestamp(t), v)).collect(),
        );
        for method in [ResampleMethod::BucketMean, ResampleMethod::Linear, ResampleMethod::Locf] {
            let out = resample(&series, Timestamp(start), Timestamp(start + len), CSpan::seconds(step), method);
            for w in out.points.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
            for &(t, v) in &out.points {
                prop_assert!(t < Timestamp(start + len));
                prop_assert!(v.is_finite());
                // Grid instants are epoch-aligned multiples of the step.
                prop_assert_eq!(t.as_seconds().rem_euclid(step), 0);
            }
        }
    }

    /// Aggregators: min ≤ avg/median ≤ max; sum = avg·n.
    #[test]
    fn aggregator_order(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        use ctt_tsdb::Aggregator;
        let min = Aggregator::Min.apply(&values);
        let max = Aggregator::Max.apply(&values);
        let avg = Aggregator::Avg.apply(&values);
        let med = Aggregator::Median.apply(&values);
        let sum = Aggregator::Sum.apply(&values);
        prop_assert!(min <= avg + 1e-6 && avg <= max + 1e-6);
        prop_assert!(min <= med && med <= max);
        prop_assert!((sum - avg * values.len() as f64).abs() < 1e-3_f64.max(sum.abs() * 1e-9));
    }
}
