//! Split invariance: `run_until(a); run_until(b)` must be byte-identical
//! to `run_until(b)`.
//!
//! The old lockstep loop force-drained the radio at every intermediate
//! `end`, resolving in-flight collision windows early — so where a caller
//! happened to pause the simulation changed its outcome. With event-based
//! window deadlines the boundary rule is exact: ticks and radio deadlines
//! landing on the split point belong to the first segment, transmissions
//! and chaos transitions to the second, and the total dispatch order is
//! identical either way. This suite pins that for healthy and chaotic
//! pipelines over several split points, including awkward odd-second ones,
//! comparing stats, ledger, alarm trace, and TSDB contents byte for byte.

use ctt::prelude::*;
use ctt_chaos::{FaultKind, FaultPlan};

/// Everything the determinism suite compares: ledger render, alarm trace,
/// counters, and TSDB point/series totals.
fn observables(p: &Pipeline) -> (String, String, PipelineStats, u64, usize) {
    let st = p.tsdb.stats();
    (
        p.ledger().render(),
        p.alarm_trace(),
        p.stats(),
        st.points,
        st.series,
    )
}

/// A plan that keeps windows opening and closing around the split points:
/// a node death, a gateway outage, frame corruption, and a bit flip.
fn split_plan(d: &Deployment) -> FaultPlan {
    let t0 = d.started;
    FaultPlan::new()
        .with(
            FaultKind::NodeDeath {
                device: d.nodes[0].eui,
            },
            t0 + Span::minutes(50),
            t0 + Span::minutes(130),
        )
        .with(
            FaultKind::GatewayOutage {
                gateway: d.gateways[0].id,
            },
            t0 + Span::minutes(95),
            t0 + Span::minutes(125),
        )
        .with(
            FaultKind::FrameCorruption {
                device: d.nodes[1].eui,
            },
            t0 + Span::hours(2),
            t0 + Span::hours(3),
        )
        .at(
            FaultKind::TsdbBitFlip {
                nth_chunk: 2,
                bit: 9_173,
            },
            t0 + Span::minutes(170),
        )
}

/// Run to `end` in one shot and in the given segments; observables must
/// agree byte for byte.
fn assert_split_invariant(build: impl Fn() -> Pipeline, splits: &[Span], horizon: Span) {
    let mut oneshot = build();
    let end = oneshot.deployment.started + horizon;
    oneshot.run_until(end);

    let mut segmented = build();
    let start = segmented.deployment.started;
    for &s in splits {
        segmented.run_until(start + s);
    }
    segmented.run_until(end);

    assert_eq!(segmented.now(), oneshot.now());
    assert_eq!(
        observables(&segmented),
        observables(&oneshot),
        "split at {splits:?} diverged from the one-shot run"
    );
}

#[test]
fn healthy_run_is_split_invariant() {
    let build = || Pipeline::new(Deployment::vejle(), 42);
    let horizon = Span::hours(3);
    // One round split, one awkward odd-second split, one mid-minute split.
    for split in [
        Span::hours(1),
        Span::seconds(47 * 60 + 13),
        Span::seconds(90 * 60 + 1),
    ] {
        assert_split_invariant(build, &[split], horizon);
    }
}

#[test]
fn many_uneven_segments_match_one_shot() {
    let build = || Pipeline::new(Deployment::vejle(), 7);
    // Eleven segments of 17 min 11 s each, ending past the 3 h one-shot
    // horizon check inside assert_split_invariant.
    let splits: Vec<Span> = (1..=10)
        .map(|i| Span::seconds(i * (17 * 60 + 11)))
        .collect();
    assert_split_invariant(build, &splits, Span::hours(3));
}

#[test]
fn chaos_run_is_split_invariant() {
    let d = Deployment::vejle();
    let plan = split_plan(&d);
    let build = || Pipeline::with_chaos(Deployment::vejle(), 1234, plan.clone());
    let horizon = Span::hours(4);
    // Splits landing before, inside, and after the fault windows — one on
    // a death-window edge exactly, one at an odd second inside the outage.
    for split in [
        Span::minutes(50),
        Span::seconds(100 * 60 + 37),
        Span::minutes(170),
        Span::seconds(3 * 3600 + 59 * 60 + 59),
    ] {
        assert_split_invariant(build, &[split], horizon);
    }
}

#[test]
fn full_fleet_split_is_invariant() {
    // Twelve nodes give dense same-instant event traffic around splits.
    let build = || Pipeline::new(Deployment::trondheim(), 5);
    assert_split_invariant(
        build,
        &[Span::seconds(29 * 60 + 59), Span::hours(1)],
        Span::hours(2),
    );
}
