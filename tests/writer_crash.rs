//! `WriterCrash` chaos drill: kill ingest shard writers mid-batch while a
//! city pipeline is running, and pin the recovery contract — the ledger
//! stays balanced, no point is lost or duplicated, and after the flush
//! barrier the run is byte-identical to one that never crashed.
//!
//! The mechanism under test: a dying writer leaves its in-flight batch in
//! the lane's ring (the occupied head slot is the lane's write-ahead
//! record); the next barrier joins the dead thread, respawns the writer,
//! and the batch is reapplied exactly once.

use ctt::prelude::*;

/// Run a pilot to `hours`, optionally injecting writer crashes on every
/// shard at each segment boundary, and return every observable the drill
/// compares.
fn run(seed: u64, hours: i64, crash: bool) -> (String, String, PipelineStats, u64, usize, String) {
    let mut p = Pipeline::new(Deployment::trondheim(), seed);
    let start = p.deployment.started;
    for h in 1..=hours {
        if crash {
            for shard in 0..p.tsdb.shard_count() {
                p.arm_writer_crash(shard);
            }
        }
        p.run_until(start + Span::hours(h));
    }
    let end = start + Span::hours(hours);
    let dev = p.deployment.nodes[0].eui;
    let series = p.device_series(dev, Quantity::Pollutant(Pollutant::Co2), start, end);
    let mut series_render = String::new();
    for (t, v) in &series.points {
        series_render.push_str(&format!("{t} {v}\n"));
    }
    if crash {
        for shard in 0..p.tsdb.shard_count() {
            assert!(
                p.ingest_writer_alive(shard),
                "shard {shard} writer not respawned after crash drill"
            );
        }
    }
    assert!(
        p.ledger().verify().is_balanced(),
        "ledger imbalance: {}",
        p.ledger().render()
    );
    let st = p.tsdb.stats();
    (
        p.ledger().render(),
        p.alarm_trace(),
        p.stats(),
        st.points,
        st.series,
        series_render,
    )
}

#[test]
fn writer_crash_mid_batch_loses_and_duplicates_nothing() {
    let reference = run(7, 4, false);
    let crashed = run(7, 4, true);
    assert_eq!(reference.0, crashed.0, "ledger diverged after crash drill");
    assert_eq!(reference.1, crashed.1, "alarm trace diverged");
    assert_eq!(reference.2, crashed.2, "pipeline stats diverged");
    assert_eq!(reference.3, crashed.3, "stored point count diverged");
    assert_eq!(reference.4, crashed.4, "series count diverged");
    assert_eq!(reference.5, crashed.5, "device series diverged");
}

#[test]
fn metrics_snapshot_is_crash_invariant() {
    // Ingest metrics are producer-side quantities, so even the full
    // registry snapshot — shard puts, ingest counters, ring high-water —
    // must not see the crash.
    let snap = |crash: bool| {
        let mut p = Pipeline::new(Deployment::vejle(), 11);
        let start = p.deployment.started;
        p.run_until(start + Span::hours(2));
        if crash {
            for shard in 0..p.tsdb.shard_count() {
                p.arm_writer_crash(shard);
            }
        }
        p.run_until(start + Span::hours(4));
        p.metrics_snapshot().to_csv()
    };
    let clean = snap(false);
    let crashed = snap(true);
    assert_eq!(clean, crashed, "registry snapshot diverged after crash");
    assert!(clean.contains("ingest.shard0.enqueued"));
}
