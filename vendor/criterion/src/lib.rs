//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface `crates/bench` uses: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`black_box`],
//! and both forms of [`criterion_group!`] plus [`criterion_main!`].
//!
//! Timing is a simple mean over `sample_size` batches — no outlier
//! rejection or HTML reports. When invoked with `--test` (as `cargo test`
//! does for `harness = false` bench targets), every benchmark body runs
//! exactly once so the test suite stays fast.
//!
//! Two environment variables drive CI integration:
//!
//! * `CRITERION_SAMPLES=<n>` overrides every sample count — smoke runs
//!   set it low so timed benches finish in seconds;
//! * `CRITERION_JSON=<path>` makes [`criterion_main!`] write all recorded
//!   results as a JSON report (`{"benchmarks": [...]}`) on exit.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-element throughput annotation for a benchmark group (subset of the
/// real crate: elements only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration
    /// (points, messages, ...); reports gain an elements/sec figure.
    Elements(u64),
}

/// One recorded benchmark measurement.
#[derive(Debug, Clone)]
struct BenchResult {
    name: String,
    mean_ns_per_iter: f64,
    /// Fastest single iteration — robust against additive scheduler noise,
    /// which only ever makes iterations slower, never faster.
    min_ns_per_iter: f64,
    samples: usize,
    elements: Option<u64>,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

fn record(result: BenchResult) {
    if let Ok(mut r) = RESULTS.lock() {
        r.push(result);
    }
}

fn sample_override() -> Option<usize> {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .map(|n| n.max(1))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write every recorded result as JSON to `$CRITERION_JSON` (no-op when
/// the variable is unset). Called by the [`criterion_main!`] expansion
/// after all groups have run.
pub fn finalize_json() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let results = match RESULTS.lock() {
        Ok(r) => r.clone(),
        Err(_) => return,
    };
    let mut body = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns_per_iter\": {:.1}, \"min_ns_per_iter\": {:.1}, \"samples\": {}",
            json_escape(&r.name),
            r.mean_ns_per_iter,
            r.min_ns_per_iter,
            r.samples
        ));
        if let Some(e) = r.elements {
            let eps = e as f64 / (r.mean_ns_per_iter * 1e-9);
            let peak = e as f64 / (r.min_ns_per_iter * 1e-9);
            body.push_str(&format!(
                ", \"elements\": {e}, \"elems_per_sec\": {eps:.1}, \"peak_elems_per_sec\": {peak:.1}"
            ));
        }
        body.push_str(if i + 1 < results.len() { "},\n" } else { "}\n" });
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("criterion: failed to write {path}: {e}");
    } else {
        println!("criterion: wrote {} results to {path}", results.len());
    }
}

/// Opaque a value to the optimizer so benchmarked work is not elided.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Record a pre-measured scalar metric (e.g. a latency percentile computed
/// by the benchmark itself) into the JSON report. The value lands in the
/// `mean_ns_per_iter` field so `bench_check` reads it like any timing.
pub fn report_metric(name: &str, ns: f64) {
    println!("bench {name}: {:.3} ms (reported metric)", ns / 1e6);
    record(BenchResult {
        name: name.to_string(),
        mean_ns_per_iter: ns.max(1.0),
        min_ns_per_iter: ns.max(1.0),
        samples: 1,
        elements: None,
    });
}

/// Top-level benchmark driver (one per `criterion_group!`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// `--test` mode: run each body once, report nothing.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark (builder-style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Apply process arguments (`--test` → smoke mode). Called by the
    /// `criterion_group!` expansion.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.test_mode = true;
        }
        self
    }

    /// Whether this run is a `--test` smoke run. Benchmarks that measure
    /// and report their own metrics (percentiles over many operations)
    /// check this to shrink the workload to a single pass.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.test_mode, None, f);
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Override the timed batch count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Declare elements processed per iteration; subsequent benches in the
    /// group report elements/sec.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F)
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let elements = self.throughput.map(|Throughput::Elements(e)| e);
        run_one(&label, samples, self.criterion.test_mode, elements, f);
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F)
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &P),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

/// A benchmark label with a parameter, e.g. `encode/1024`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Label from a bare parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Accepted benchmark identifiers: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The display label for the benchmark.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Handed to each benchmark body; call [`Bencher::iter`] with the workload.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    elapsed: Option<Duration>,
    fastest: Option<Duration>,
}

impl Bencher {
    fn finish_timing(&mut self, total: Duration, fastest: Duration) {
        self.elapsed = Some(total);
        self.fastest = Some(fastest);
    }

    /// Time `f`, running it `samples` times (once in `--test` mode). Each
    /// sample is timed individually so the report carries both the mean
    /// and the noise-robust minimum.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Small warmup so first-touch costs don't skew the mean.
        for _ in 0..2 {
            black_box(f());
        }
        let mut total = Duration::ZERO;
        let mut fastest = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            total += dt;
            fastest = fastest.min(dt);
        }
        self.finish_timing(total, fastest);
    }

    /// Like [`Bencher::iter`], but rebuild the routine's input with `setup`
    /// before every invocation; only the routine itself is timed.
    pub fn iter_with_setup<S, I, O, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        for _ in 0..2 {
            black_box(routine(setup()));
        }
        let mut total = Duration::ZERO;
        let mut fastest = Duration::MAX;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            total += dt;
            fastest = fastest.min(dt);
        }
        self.finish_timing(total, fastest);
    }
}

fn run_one<F>(label: &str, samples: usize, test_mode: bool, elements: Option<u64>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let samples = sample_override().unwrap_or(samples);
    let mut b = Bencher {
        samples,
        test_mode,
        elapsed: None,
        fastest: None,
    };
    f(&mut b);
    if test_mode {
        println!("bench {label}: ok (smoke)");
        return;
    }
    match b.elapsed {
        Some(total) => {
            let per_iter = total / samples as u32;
            let mean_ns = total.as_nanos() as f64 / samples as f64;
            let min_ns = b
                .fastest
                .map(|d| d.as_nanos() as f64)
                .unwrap_or(mean_ns)
                .max(1.0);
            match elements {
                Some(e) if mean_ns > 0.0 => {
                    let eps = e as f64 / (mean_ns * 1e-9);
                    println!(
                        "bench {label}: {per_iter:?}/iter, {eps:.0} elems/s ({samples} samples)"
                    );
                }
                _ => println!("bench {label}: {per_iter:?}/iter ({samples} samples)"),
            }
            record(BenchResult {
                name: label.to_string(),
                mean_ns_per_iter: mean_ns.max(1.0),
                min_ns_per_iter: min_ns,
                samples,
                elements,
            });
        }
        None => println!("bench {label}: no iter() call"),
    }
}

/// Define a benchmark group function. Supports both the positional form
/// `criterion_group!(benches, f1, f2)` and the configured form
/// `criterion_group!(name = benches; config = Criterion::default(); targets = f1, f2)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(c: &mut Criterion) {
        c.bench_function("wave", |b| b.iter(|| (0..64).sum::<i64>()));
    }

    criterion_group!(positional_group, wave);
    criterion_group!(
        name = configured_group;
        config = Criterion::default().sample_size(3);
        targets = wave,
    );

    #[test]
    fn groups_run() {
        positional_group();
        configured_group();
    }

    #[test]
    fn group_api_shapes() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("sized", 8), &8usize, |b, &n| {
            b.iter(|| vec![0u8; n])
        });
        g.finish();
    }
}
