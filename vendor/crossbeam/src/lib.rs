//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` — a bounded/unbounded MPMC channel built on
//! `std::sync` (Mutex + Condvar) with the same API shape and error types the
//! workspace uses. Throughput is below the real crossbeam's lock-free
//! implementation, but semantics (multi-producer, multi-consumer,
//! disconnect-on-last-drop) match.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

/// MPMC channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    /// Error for [`Sender::send`]: the message could not be delivered.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    /// Error for [`Receiver::recv`]: all senders dropped and queue drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// All senders dropped and queue drained.
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with nothing queued.
        Timeout,
        /// All senders dropped and queue drained.
        Disconnected,
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// `None` = unbounded.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half; clone for more producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone for more consumers.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// A channel that holds at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    /// A channel with no queue bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue without blocking, or report why not.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            let mut q = self.shared.lock();
            if let Some(cap) = self.shared.capacity {
                if q.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            q.push_back(msg);
            drop(q);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Enqueue, blocking while the channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.lock();
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.capacity {
                    Some(cap) if q.len() >= cap => {
                        q = self
                            .shared
                            .not_full
                            .wait_timeout(q, Duration::from_millis(50))
                            .unwrap_or_else(PoisonError::into_inner)
                            .0;
                    }
                    _ => break,
                }
            }
            q.push_back(msg);
            drop(q);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Queued message count.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// Whether the queue is empty right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue without blocking, or report why not.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.lock();
            if let Some(msg) = q.pop_front() {
                drop(q);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Dequeue, blocking until a message or disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.lock();
            loop {
                if let Some(msg) = q.pop_front() {
                    drop(q);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .not_empty
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }

        /// Dequeue, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.lock();
            loop {
                if let Some(msg) = q.pop_front() {
                    drop(q);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                q = self
                    .shared
                    .not_empty
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }

        /// Queued message count.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// Whether the queue is empty right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError, TrySendError};
    use std::time::Duration;

    #[test]
    fn bounded_fills_up() {
        let (tx, rx) = bounded(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.try_recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn disconnect_detected_on_both_ends() {
        let (tx, rx) = bounded::<i32>(4);
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
        let (tx2, rx2) = bounded::<i32>(4);
        tx2.try_send(9).unwrap();
        drop(tx2);
        assert_eq!(rx2.try_recv(), Ok(9));
        assert_eq!(rx2.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = bounded::<i32>(1);
        let out = rx.recv_timeout(Duration::from_millis(20));
        assert_eq!(out, Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut n = 0usize;
                    while rx.recv().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        drop(rx);
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
