//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind the poison-free `parking_lot` API the
//! workspace standardizes on: `lock()`/`read()`/`write()` return guards
//! directly instead of a `Result`. A poisoned std lock is recovered by taking
//! the inner guard — equivalent to `parking_lot`'s no-poisoning semantics,
//! where a panicking holder simply releases the lock.
//!
//! This file is the one sanctioned home of `std::sync::Mutex` in the
//! workspace; `ctt-lint` rule R3 bans it everywhere else (the vendor tree is
//! outside the lint walk).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::sync::{self, PoisonError};

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire a read guard if no writer holds the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is simply free again.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
