//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API used by `tests/property.rs`:
//! the [`proptest!`] macro over functions with `pattern in strategy`
//! arguments, `prop_assert!`/`prop_assert_eq!`, range and `any::<T>()`
//! strategies, `collection::vec`, tuple strategies, and a small
//! character-class regex subset for string strategies.
//!
//! Differences from the real crate: cases are drawn from a deterministic
//! SplitMix64 stream seeded per test name (override the case count with
//! `PROPTEST_CASES`), and failing cases are **not shrunk** — the failing
//! input is printed as-is.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator backing all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (stable across runs) plus `PROPTEST_SEED`.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng {
            state: h ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A failed property within a [`proptest!`] case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Something that can produce values for a [`proptest!`] argument.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy: always yields a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice over boxed strategies — backs [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; weights need not be normalised.
    pub fn new_weighted(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total.max(1));
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        // Unreachable for non-empty arms; satisfy the checker by drawing
        // from the last arm.
        self.arms[self.arms.len() - 1].1.generate(rng)
    }
}

/// Weighted (`w => strategy`) or unweighted choice between strategies with
/// a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![$(($weight, Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![$((1u32, Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>)),+])
    };
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only; the real crate's any::<f64>() includes
        // specials, but no workspace test relies on that via any().
        (rng.unit() - 0.5) * 2e12
    }
}

/// Strategy for any value of `T` — `any::<u64>()` etc.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident $idx:tt),+)),+) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A 0, B 1), (A 0, B 1, C 2), (A 0, B 1, C 2, D 3));

/// Regex-subset string strategy: a `&str` pattern is itself a strategy.
///
/// Supported syntax: literal characters, character classes like
/// `[a-z0-9_]`, and `{n}` / `{m,n}` repetition after a class or literal.
/// Anything else panics at generation time — extend the parser rather than
/// silently generating wrong strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        // 1. Parse one atom: a class or a literal.
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let class = &chars[i + 1..i + close];
                i += close + 1;
                expand_class(class, pattern)
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                i += 2;
                vec![c]
            }
            '(' | ')' | '|' | '*' | '+' | '?' | '.' => {
                panic!("unsupported regex construct {:?} in {pattern:?}", chars[i])
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // 2. Optional {n} / {m,n} repetition.
        let (lo, hi) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let spec: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            let parse = |s: &str| -> usize {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repetition {spec:?} in {pattern:?}"))
            };
            match spec.split_once(',') {
                Some((m, n)) => (parse(m), parse(n)),
                None => (parse(&spec), parse(&spec)),
            }
        } else {
            (1, 1)
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            let pick = rng.below(alphabet.len() as u64) as usize;
            out.push(alphabet[pick]);
        }
    }
    out
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut j = 0usize;
    while j < class.len() {
        if j + 2 < class.len() && class[j + 1] == '-' {
            let (lo, hi) = (class[j], class[j + 2]);
            assert!(lo <= hi, "inverted class range in {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
            j += 3;
        } else {
            set.push(class[j]);
            j += 1;
        }
    }
    assert!(!set.is_empty(), "empty character class in {pattern:?}");
    set
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of `elem` values with a length in `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `vec(strategy, range)` — the proptest vector combinator.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Number of cases per property (override with `PROPTEST_CASES`).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(96)
}

/// Driver used by the generated test body: run `f` for every case.
pub fn run_cases<F>(name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = case_count();
    let mut rng = TestRng::from_name(name);
    for case in 0..cases {
        if let Err(e) = f(&mut rng) {
            panic!("property {name} failed at case {case}/{cases}: {e}");
        }
    }
}

/// The proptest entry macro: wraps `fn name(arg in strategy, ...) { .. }`
/// test bodies into exhaustively-sampled `#[test]` functions.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__pt_rng| {
                    $crate::__proptest_bind!(__pt_rng; $($args)*);
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Internal: bind `pattern in strategy` arguments to generated values.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; mut $name:ident in $strat:expr) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; mut $name:ident in $strat:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n at {}:{}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r,
                        file!(),
                        line!()
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, Map, Strategy, TestCaseError, TestRng, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, y in 0.0..1.0f64, b in 1u8..=9) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..=9).contains(&b));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        #[test]
        fn string_pattern_subset(s in "[a-c0-1]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| "abc01".contains(c)));
        }

        #[test]
        fn tuples_compose(mut pair in (0i64..10, 5.0..6.0f64)) {
            pair.0 += 1;
            prop_assert!((1..11).contains(&pair.0));
            prop_assert!((5.0..6.0).contains(&pair.1));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_context() {
        crate::run_cases("doomed", |_| Err(TestCaseError::fail("nope")));
    }
}
