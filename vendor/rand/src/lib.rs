//! Offline stand-in for the `rand` crate.
//!
//! The CTT build environment has no crates.io access, so this vendored shim
//! provides the small slice of the `rand 0.8` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer and float ranges, and [`Rng::gen_bool`]. The generator is a
//! SplitMix64 — statistically fine for simulation jitter and deterministic
//! under a fixed seed, which is all the workspace asks of it. It is NOT a
//! cryptographic RNG (neither is the simulation's use of the real `StdRng`).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range (or other distribution shape) values can be sampled from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value from `self` using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform unit interval value in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                // Modulo bias is negligible for the simulation spans used
                // here (all far below 2^64).
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// The real `StdRng` is a ChaCha12; this shim only promises what the
    /// workspace relies on: a fixed seed yields a fixed stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let b = rng.gen_range(1u8..=255);
            assert!(b >= 1);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }
}
